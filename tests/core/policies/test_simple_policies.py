"""Unit tests for the simple per-packet policies."""

import pytest

from repro.core.model import Packet
from repro.core.policies import (
    EarliestDeadlineFirstScheduler,
    FIFOScheduler,
    LeastSlackTimeFirstScheduler,
    ShortestRemainingTimeFirstScheduler,
    StrictPriorityScheduler,
)


class TestFIFO:
    def test_order(self):
        scheduler = FIFOScheduler()
        packets = [Packet(flow_id=i) for i in range(5)]
        for packet in packets:
            scheduler.enqueue(packet)
        drained = [scheduler.dequeue().packet_id for _ in range(5)]
        assert drained == [p.packet_id for p in packets]
        assert scheduler.dequeue() is None

    def test_pending(self):
        scheduler = FIFOScheduler()
        assert scheduler.empty
        scheduler.enqueue(Packet(flow_id=1))
        assert scheduler.pending == 1


class TestStrictPriority:
    def test_highest_priority_first(self):
        scheduler = StrictPriorityScheduler(levels=4)
        low = Packet(flow_id=1, priority_class=3)
        high = Packet(flow_id=2, priority_class=0)
        mid = Packet(flow_id=3, priority_class=1)
        for packet in (low, mid, high):
            scheduler.enqueue(packet)
        assert scheduler.dequeue() is high
        assert scheduler.dequeue() is mid
        assert scheduler.dequeue() is low

    def test_invalid_class(self):
        scheduler = StrictPriorityScheduler(levels=2)
        with pytest.raises(ValueError):
            scheduler.enqueue(Packet(flow_id=1, priority_class=5))
        with pytest.raises(ValueError):
            StrictPriorityScheduler(levels=0)

    def test_fifo_within_class(self):
        scheduler = StrictPriorityScheduler(levels=2)
        first = Packet(flow_id=1, priority_class=1)
        second = Packet(flow_id=2, priority_class=1)
        scheduler.enqueue(first)
        scheduler.enqueue(second)
        assert scheduler.dequeue() is first
        assert scheduler.dequeue() is second


class TestEDF:
    def test_earliest_deadline_first(self):
        scheduler = EarliestDeadlineFirstScheduler()
        late = Packet(flow_id=1).annotate(deadline_ns=900_000)
        early = Packet(flow_id=2).annotate(deadline_ns=10_000)
        scheduler.enqueue(late, now_ns=0)
        scheduler.enqueue(early, now_ns=0)
        assert scheduler.dequeue() is early

    def test_missing_deadline_ranks_last(self):
        scheduler = EarliestDeadlineFirstScheduler()
        no_deadline = Packet(flow_id=1)
        with_deadline = Packet(flow_id=2).annotate(deadline_ns=500_000)
        scheduler.enqueue(no_deadline, now_ns=0)
        scheduler.enqueue(with_deadline, now_ns=0)
        assert scheduler.dequeue() is with_deadline


class TestLSTF:
    def test_least_slack_first(self):
        scheduler = LeastSlackTimeFirstScheduler()
        relaxed = Packet(flow_id=1).annotate(slack_ns=500_000)
        urgent = Packet(flow_id=2).annotate(slack_ns=5_000)
        scheduler.enqueue(relaxed, now_ns=0)
        scheduler.enqueue(urgent, now_ns=0)
        assert scheduler.dequeue() is urgent

    def test_slack_clamped_to_horizon(self):
        scheduler = LeastSlackTimeFirstScheduler(max_slack_ns=1_000_000)
        huge = Packet(flow_id=1).annotate(slack_ns=10**12)
        scheduler.enqueue(huge, now_ns=0)
        assert scheduler.dequeue() is huge


class TestSRTF:
    def test_smallest_remaining_first(self):
        scheduler = ShortestRemainingTimeFirstScheduler()
        elephant = Packet(flow_id=1).annotate(remaining_bytes=5_000_000)
        mouse = Packet(flow_id=2).annotate(remaining_bytes=3_000)
        scheduler.enqueue(elephant)
        scheduler.enqueue(mouse)
        assert scheduler.dequeue() is mouse
        assert scheduler.dequeue() is elephant

    def test_unannotated_packet_ranks_last(self):
        scheduler = ShortestRemainingTimeFirstScheduler()
        unknown = Packet(flow_id=1)
        known = Packet(flow_id=2).annotate(remaining_bytes=100)
        scheduler.enqueue(unknown)
        scheduler.enqueue(known)
        assert scheduler.dequeue() is known
