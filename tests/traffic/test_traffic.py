"""Unit tests for workload distributions and generators."""

import pytest

from repro.traffic import (
    EmpiricalCDF,
    FlowSizeDistribution,
    FlowWorkload,
    PoissonArrivals,
    RoundRobinAnnotator,
    SyntheticPacketGenerator,
    load_for_fabric,
)


class TestEmpiricalCDF:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.5)])  # does not reach 1.0
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.7), (20, 0.5), (30, 1.0)])  # decreasing prob
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.5), (5, 1.0)])  # decreasing value

    def test_quantile_and_mean(self):
        cdf = EmpiricalCDF([(100, 0.5), (1000, 1.0)])
        assert 0 < cdf.quantile(0.25) <= 100
        assert 100 < cdf.quantile(0.75) <= 1000
        assert 0 < cdf.mean() < 1000
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_samples_within_support(self):
        import random

        cdf = EmpiricalCDF([(100, 0.5), (1000, 1.0)])
        rng = random.Random(1)
        for _ in range(200):
            assert 0 <= cdf.sample(rng) <= 1000


class TestFlowSizeDistribution:
    def test_websearch_statistics(self):
        dist = FlowSizeDistribution("websearch", seed=1)
        samples = [dist.sample_bytes() for _ in range(2000)]
        assert min(samples) >= 1
        assert max(samples) <= 20_000_000
        # Heavy tail: the mean is far above the median.
        samples.sort()
        median = samples[len(samples) // 2]
        mean = sum(samples) / len(samples)
        assert mean > 2 * median

    def test_datamining_heavier_tail_than_websearch(self):
        web = FlowSizeDistribution("websearch")
        mining = FlowSizeDistribution("datamining")
        assert mining.cdf.quantile(0.5) < web.cdf.quantile(0.5)
        assert mining.cdf.quantile(0.999) > web.cdf.quantile(0.999)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("bitcoin")

    def test_sample_packets(self):
        dist = FlowSizeDistribution("websearch", seed=3)
        assert dist.sample_packets() >= 1


class TestPoissonArrivals:
    def test_mean_rate(self):
        arrivals = PoissonArrivals(rate_per_sec=10_000, seed=5)
        gaps = [arrivals.next_gap_ns() for _ in range(5000)]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(1e9 / 10_000, rel=0.1)

    def test_arrival_times_monotonic(self):
        arrivals = PoissonArrivals(rate_per_sec=100, seed=5)
        times = arrivals.arrival_times_ns(100)
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)


class TestLoadForFabric:
    def test_scaling(self):
        base = load_for_fabric(0.4, 10e9, 16, 100_000)
        double_load = load_for_fabric(0.8, 10e9, 16, 100_000)
        assert double_load == pytest.approx(2 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            load_for_fabric(0, 10e9, 16, 1000)
        with pytest.raises(ValueError):
            load_for_fabric(0.5, 0, 16, 1000)


class TestGenerators:
    def test_round_robin_annotator(self):
        from repro.core.model import Packet

        annotator = RoundRobinAnnotator(3)
        flows = [annotator.annotate(Packet(flow_id=0)).flow_id for _ in range(7)]
        assert flows == [0, 1, 2, 0, 1, 2, 0]
        with pytest.raises(ValueError):
            RoundRobinAnnotator(0)

    def test_synthetic_generator_batches(self):
        generator = SyntheticPacketGenerator(packet_bytes=64, batch_size=8)
        batches = list(generator.batches(3))
        assert len(batches) == 3
        assert all(len(batch) == 8 for batch in batches)
        assert generator.generated == 24
        assert all(packet.size_bytes == 64 for batch in batches for packet in batch)

    def test_flow_workload_generates_valid_endpoints(self):
        workload = FlowWorkload(
            num_hosts=8, link_bps=10e9, target_load=0.5, seed=11
        )
        flows = workload.generate(200)
        assert len(flows) == 200
        for flow in flows:
            assert 0 <= flow.src < 8
            assert 0 <= flow.dst < 8
            assert flow.src != flow.dst
            assert flow.size_bytes >= 1
        arrivals = [flow.arrival_ns for flow in flows]
        assert arrivals == sorted(arrivals)

    def test_flow_workload_requires_two_hosts(self):
        with pytest.raises(ValueError):
            FlowWorkload(num_hosts=1, link_bps=10e9, target_load=0.5)


class TestSeedingContract:
    def test_flow_workload_seed_reproducible(self):
        make = lambda: FlowWorkload(num_hosts=8, link_bps=10e9, target_load=0.5, seed=42)
        flows_a = make().generate(50)
        flows_b = make().generate(50)
        assert [
            (f.size_bytes, f.arrival_ns, f.src, f.dst) for f in flows_a
        ] == [(f.size_bytes, f.arrival_ns, f.src, f.dst) for f in flows_b]

    def test_flow_workload_rng_reproducible_without_seed(self):
        import random

        def build(seed):
            return FlowWorkload(
                num_hosts=8,
                link_bps=10e9,
                target_load=0.5,
                rng=random.Random(seed),
            )

        flows_a = build(7).generate(50)
        flows_b = build(7).generate(50)
        flows_c = build(8).generate(50)
        key = lambda flows: [(f.size_bytes, f.arrival_ns, f.src, f.dst) for f in flows]
        assert key(flows_a) == key(flows_b)
        assert key(flows_a) != key(flows_c)

    def test_flow_workload_rejects_seed_and_rng(self):
        import random

        with pytest.raises(ValueError):
            FlowWorkload(
                num_hosts=8,
                link_bps=10e9,
                target_load=0.5,
                seed=1,
                rng=random.Random(2),
            )


class TestZipfFlowSampler:
    def test_hot_flows_dominate(self):
        from repro.traffic import ZipfFlowSampler

        sampler = ZipfFlowSampler(num_flows=64, skew=1.2, seed=5)
        samples = sampler.sample_flows(5000)
        assert all(0 <= flow < 64 for flow in samples)
        hot_share = sum(1 for flow in samples if flow < 4) / len(samples)
        assert hot_share > 0.35  # the head carries a large share

    def test_probability_sums_to_one(self):
        from repro.traffic import ZipfFlowSampler

        sampler = ZipfFlowSampler(num_flows=16, skew=1.0, seed=0)
        total = sum(sampler.probability(flow) for flow in range(16))
        assert total == pytest.approx(1.0)
        assert sampler.probability(0) > sampler.probability(15)

    def test_zero_skew_is_uniform(self):
        from repro.traffic import ZipfFlowSampler

        sampler = ZipfFlowSampler(num_flows=10, skew=0.0, seed=0)
        for flow in range(10):
            assert sampler.probability(flow) == pytest.approx(0.1)

    def test_rng_chaining_reproducible(self):
        import random

        from repro.traffic import ZipfFlowSampler

        samples_a = ZipfFlowSampler(32, seed=None, rng=random.Random(3)).sample_flows(64)
        samples_b = ZipfFlowSampler(32, rng=random.Random(3)).sample_flows(64)
        assert samples_a == samples_b

    def test_validation(self):
        import random

        from repro.traffic import ZipfFlowSampler

        with pytest.raises(ValueError):
            ZipfFlowSampler(0)
        with pytest.raises(ValueError):
            ZipfFlowSampler(4, skew=-1)
        with pytest.raises(ValueError):
            ZipfFlowSampler(4, seed=1, rng=random.Random(2))
        with pytest.raises(ValueError):
            ZipfFlowSampler(4).probability(9)


class TestZipfStreaming:
    """The lazy-CDF path for million-flow universes (no O(N) materialisation)."""

    def _streaming(self, num_flows, **kwargs):
        from repro.traffic import ZipfFlowSampler

        class Streaming(ZipfFlowSampler):
            MATERIALIZE_LIMIT = 1  # force the lazy path at any size

        sampler = Streaming(num_flows, **kwargs)
        assert not sampler.materialized
        return sampler

    def test_large_universe_constructs_fast_without_materialising(self):
        import time

        from repro.traffic import ZipfFlowSampler

        start = time.perf_counter()
        sampler = ZipfFlowSampler(2_000_000, skew=1.2, seed=42)
        elapsed = time.perf_counter() - start
        assert not sampler.materialized
        # Construction is O(head): generous bound, but materialising a 2M
        # CDF takes ~1 s — this guards the complexity class, not the clock.
        assert elapsed < 0.5
        samples = sampler.sample_flows(2_000)
        assert all(0 <= flow < 2_000_000 for flow in samples)

    def test_streaming_ranks_match_eager_cdf_exactly(self):
        import bisect

        from repro.traffic import ZipfFlowSampler

        eager = ZipfFlowSampler(60_000, skew=1.2, seed=0)
        assert eager.materialized
        stream = self._streaming(60_000, skew=1.2, seed=0)
        for index in range(1, 400):
            u = index / 400
            eager_rank = min(bisect.bisect_left(eager._cdf, u), 59_999)
            stream_rank = min(stream._rank_for(u * stream._total), 59_999)
            assert eager_rank == stream_rank, u

    def test_streaming_head_frequency_tracks_probability(self):
        sampler = self._streaming(1_000_000, skew=1.2, seed=7)
        samples = sampler.sample_flows(20_000)
        observed = sum(1 for flow in samples if flow == 0) / len(samples)
        assert observed == pytest.approx(sampler.probability(0), abs=0.05)
        total_head = sum(sampler.probability(flow) for flow in range(4_096))
        assert 0.5 < total_head < 1.0

    def test_streaming_probability_matches_eager(self):
        from repro.traffic import ZipfFlowSampler

        eager = ZipfFlowSampler(10_000, skew=1.1, seed=0)
        stream = self._streaming(10_000, skew=1.1, seed=0)
        for flow in (0, 1, 10, 4_095, 4_096, 9_999):
            assert stream.probability(flow) == pytest.approx(
                eager.probability(flow), rel=1e-6
            )

    def test_streaming_skew_one_log_branch(self):
        sampler = self._streaming(100_000, skew=1.0, seed=3)
        samples = sampler.sample_flows(2_000)
        assert all(0 <= flow < 100_000 for flow in samples)
        assert sum(sampler.probability(flow) for flow in (0, 1, 2)) < 1.0

    def test_committed_small_universes_stay_eager_and_identical(self):
        # The sharding benchmark's seeded sequences are part of committed
        # artifacts; small universes must keep the original eager path.
        from repro.traffic import ZipfFlowSampler

        sampler = ZipfFlowSampler(1_024, skew=1.2, seed=7)
        assert sampler.materialized
        assert sampler.sample_flows(32) == ZipfFlowSampler(
            1_024, skew=1.2, seed=7
        ).sample_flows(32)
