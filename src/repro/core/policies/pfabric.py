"""pFabric host scheduling — Use Case 3 (Section 5.1.3, Figures 14 and 15).

pFabric orders *flows* by their remaining size: the flow with the fewest
remaining packets transmits first (an SRTF approximation shown to be
near-optimal for flow completion times).  Every arriving and departing packet
changes the flow's remaining size, so the flow's position must be updated on
both enqueue and dequeue — exactly the pair of primitives Eiffel adds to the
PIFO model (Figure 14)::

    # On enqueue of packet p of flow f:
    f.rank = min(p.rank, f.rank)
    # On dequeue of packet p of flow f:
    f.rank = min(p.rank, f.front().rank)

Two implementations are provided:

* :class:`EiffelPFabricScheduler` — a per-flow transaction over a bucketed
  integer queue (cFFS by default); moving a flow between buckets is O(1).
* :class:`HeapPFabricScheduler` — the Figure 15 baseline: flows live in a
  binary heap keyed by rank, and every rank change re-heapifies the whole
  heap (the O(n) cost the paper attributes to the baseline).

Packets carry their rank in ``metadata['remaining_packets']`` (set by the
traffic generator or transport); when absent, the scheduler falls back to
counting the flow's own backlog, which yields SRPT-of-backlog behaviour.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional

from .base import PacketScheduler
from ..model.packet import Flow, FlowTable, Packet
from ..model.pifo import QueueFactory, default_queue_factory
from ..model.transactions import PerFlowSchedulingTransaction
from ..queues import BucketSpec

#: Default cap on the rank range (remaining packets per flow).
DEFAULT_MAX_REMAINING = 1 << 20


def _packet_rank(packet: Packet, flow: Flow, max_remaining: int) -> int:
    """Rank carried by ``packet``: remaining packets of its flow."""
    remaining = packet.metadata.get("remaining_packets")
    if remaining is None:
        remaining = flow.state.backlog_packets
    return min(int(remaining), max_remaining - 1)


class EiffelPFabricScheduler(PacketScheduler):
    """pFabric using Eiffel's per-flow + on-dequeue primitives (Figure 14)."""

    name = "pfabric_eiffel"

    def __init__(
        self,
        max_remaining: int = DEFAULT_MAX_REMAINING,
        queue_factory: QueueFactory = default_queue_factory,
        buckets: Optional[int] = None,
    ) -> None:
        self.max_remaining = max_remaining
        num_buckets = buckets if buckets is not None else min(max_remaining, 1 << 17)

        def on_enqueue(flow: Flow, packet: Optional[Packet], context: dict) -> None:
            assert packet is not None
            rank = _packet_rank(packet, flow, self.max_remaining)
            if flow.state.backlog_packets == 1:
                flow.rank = rank
            else:
                flow.rank = min(rank, flow.rank)

        def on_dequeue(flow: Flow, packet: Optional[Packet], context: dict) -> None:
            head = flow.front()
            if head is None:
                return
            assert packet is not None
            head_rank = _packet_rank(head, flow, self.max_remaining)
            packet_rank = _packet_rank(packet, flow, self.max_remaining)
            flow.rank = min(packet_rank, head_rank)

        self._transaction = PerFlowSchedulingTransaction(
            "pfabric",
            on_enqueue,
            BucketSpec(num_buckets=num_buckets, granularity=max(1, max_remaining // num_buckets)),
            on_dequeue=on_dequeue,
            queue_factory=queue_factory,
        )

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        self._transaction.enqueue(packet)

    def enqueue_batch(self, packets: Iterable[Packet], now_ns: int = 0) -> int:
        """Batched admit: one flow relocation per touched flow (Figure 14)."""
        return self._transaction.enqueue_batch(packets)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        return self._transaction.dequeue()

    @property
    def pending(self) -> int:
        return len(self._transaction)

    @property
    def active_flows(self) -> int:
        """Flows currently holding packets."""
        return self._transaction.active_flow_count


class HeapPFabricScheduler(PacketScheduler):
    """pFabric baseline: flows kept in a binary heap, re-heapified on change.

    The heap holds ``(rank, flow_id)`` pairs.  Because a binary heap cannot
    relocate an arbitrary element, any rank change rebuilds the heap —
    an O(n) cost per packet that grows with the number of active flows, which
    is what makes the baseline fall off in Figure 15.
    """

    name = "pfabric_heap"

    def __init__(self, max_remaining: int = DEFAULT_MAX_REMAINING) -> None:
        self.max_remaining = max_remaining
        self._flows = FlowTable()
        self._heap: List[List] = []  # entries are [rank, flow_id]
        self._entries: Dict[int, List] = {}
        self._pending = 0
        #: Number of heap element moves performed (for cost accounting).
        self.heap_operations = 0

    # -- heap maintenance ---------------------------------------------------------

    def _set_flow_rank(self, flow: Flow, rank: int) -> None:
        entry = self._entries.get(flow.flow_id)
        if entry is None:
            # A new flow is a plain O(log n) heap push.
            entry = [rank, flow.flow_id]
            self._entries[flow.flow_id] = entry
            heapq.heappush(self._heap, entry)
            self.heap_operations += max(1, len(self._heap).bit_length())
        else:
            # Changing the rank of an arbitrary element requires rebuilding
            # the heap — the O(n) cost the paper attributes to the baseline.
            entry[0] = rank
            heapq.heapify(self._heap)
            self.heap_operations += max(1, len(self._heap))

    def _remove_flow(self, flow_id: int) -> None:
        entry = self._entries.pop(flow_id, None)
        if entry is None:
            return
        self._heap.remove(entry)
        heapq.heapify(self._heap)
        self.heap_operations += max(1, len(self._heap))

    # -- scheduler interface ---------------------------------------------------------

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        flow = self._flows.get(packet.flow_id)
        flow.push(packet)
        self._pending += 1
        rank = _packet_rank(packet, flow, self.max_remaining)
        if flow.state.backlog_packets == 1:
            flow.rank = rank
        else:
            flow.rank = min(rank, flow.rank)
        self._set_flow_rank(flow, flow.rank)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        if self._pending == 0:
            return None
        rank, flow_id = self._heap[0]
        flow = self._flows.get(flow_id)
        packet = flow.pop()
        self._pending -= 1
        head = flow.front()
        if head is None:
            self._remove_flow(flow_id)
        else:
            head_rank = _packet_rank(head, flow, self.max_remaining)
            packet_rank = _packet_rank(packet, flow, self.max_remaining)
            flow.rank = min(packet_rank, head_rank)
            self._set_flow_rank(flow, flow.rank)
        return packet

    @property
    def pending(self) -> int:
        return self._pending

    @property
    def active_flows(self) -> int:
        """Flows currently holding packets."""
        return len(self._entries)


__all__ = ["EiffelPFabricScheduler", "HeapPFabricScheduler", "DEFAULT_MAX_REMAINING"]
