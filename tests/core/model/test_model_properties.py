"""Property-based tests for the programming-model layer."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.model import (
    Packet,
    PerFlowSchedulingTransaction,
    RateLimit,
    SchedulingTree,
    NodeConfig,
    ShapingTransaction,
    WFQRankPolicy,
)
from repro.core.queues import BucketSpec


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=8),    # flow id
            st.integers(min_value=64, max_value=1500),  # packet size
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_per_flow_transaction_conserves_packets_and_preserves_flow_order(events):
    def rank_by_bytes(flow, packet, ctx):
        flow.rank = min(flow.state.backlog_bytes // 100, 9999)

    transaction = PerFlowSchedulingTransaction(
        "prop", rank_by_bytes, BucketSpec(num_buckets=10_000), on_dequeue=rank_by_bytes
    )
    sent = {}
    for flow_id, size in events:
        packet = Packet(flow_id=flow_id, size_bytes=size)
        sent.setdefault(flow_id, []).append(packet.packet_id)
        transaction.enqueue(packet)
    received = {}
    while True:
        packet = transaction.dequeue()
        if packet is None:
            break
        received.setdefault(packet.flow_id, []).append(packet.packet_id)
    # Conservation and per-flow FIFO order.
    assert received == sent


@given(
    st.floats(min_value=1e5, max_value=1e9),
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=200, max_value=1500),
)
@settings(max_examples=60, deadline=None)
def test_shaping_transaction_never_exceeds_rate(rate_bps, count, size_bytes):
    shaping = ShapingTransaction("prop", RateLimit(rate_bps))
    timestamps = [
        shaping.stamp(Packet(flow_id=1, size_bytes=size_bytes), now_ns=0)
        for _ in range(count)
    ]
    # Timestamps are non-decreasing and the long-run rate stays at or below
    # the configured limit (the last packet's start time is late enough).
    assert timestamps == sorted(timestamps)
    total_bits = (count - 1) * size_bytes * 8
    minimum_duration_ns = total_bits / rate_bps * 1e9
    assert timestamps[-1] >= minimum_duration_ns * 0.99


@given(
    st.lists(st.sampled_from(["a", "b", "c"]), min_size=3, max_size=120),
    st.floats(min_value=0.5, max_value=4.0),
)
@settings(max_examples=40, deadline=None)
def test_scheduling_tree_conserves_packets(leaves, weight):
    tree = SchedulingTree(
        [
            NodeConfig(
                name="root",
                rank_policy=WFQRankPolicy({"a": weight, "b": 1.0, "c": 2.0}),
            ),
            NodeConfig(name="a", parent="root"),
            NodeConfig(name="b", parent="root"),
            NodeConfig(name="c", parent="root"),
        ]
    )
    packets = []
    for index, leaf in enumerate(leaves):
        packet = Packet(flow_id=index, size_bytes=1000)
        packets.append(packet)
        tree.enqueue(leaf, packet)
    drained = []
    while not tree.empty:
        drained.append(tree.dequeue())
    assert sorted(p.packet_id for p in drained) == sorted(p.packet_id for p in packets)
    assert tree.dequeue() is None
