"""Property-based tests for the flow-state engine under churn storms.

The tentpole invariants of the array-backed engine: however violent the
flow churn — generations of short-lived flows arriving and dying across
shards, with stealing and rebalancing active — the engine must (a) never
reorder a flow, (b) never lose or duplicate a packet, (c) never strand a
slot once the storm drains, and (d) reclaim exactly the same live set
whether GC runs as one global scan or as bounded incremental sweeps.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.model.packet import Packet
from repro.runtime import FlowSharder, FlowTable, ShardedRuntime

QUANTUM_NS = 10_000
FAR_FUTURE_NS = 10**15


@st.composite
def churn_storms(draw):
    """Generations of mostly-fresh flow ids: high birth/death rate.

    Each generation draws from its own id range so most flows die after
    one burst, with a few survivors resubmitted from earlier generations
    — the access pattern that strands state in a naive engine.
    """
    num_generations = draw(st.integers(min_value=2, max_value=6))
    width = draw(st.integers(min_value=2, max_value=10))
    storms = []
    for generation in range(num_generations):
        base = generation * width
        fresh = draw(
            st.lists(
                st.integers(min_value=0, max_value=width - 1),
                min_size=1,
                max_size=25,
            )
        )
        survivors = (
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=base - 1), max_size=4
                )
            )
            if base
            else []
        )
        storms.append([base + flow for flow in fresh] + survivors)
    return storms


def _drain_gc(runtime, now_ns=FAR_FUTURE_NS):
    """Drive GC to its fixpoint at ``now_ns`` (covers bounded sweeps)."""
    for _ in range(runtime.flows.slot_limit + 2):
        before = len(runtime.flows)
        runtime._gc_flow_state(now_ns)
        if len(runtime.flows) == before:
            if runtime.gc_sweep_limit is None:
                break
            # A bounded sweep may stall on a stretch of dead slots; only a
            # full extra lap with no progress proves the fixpoint.
        if len(runtime.flows) == 0:
            break


@given(
    storms=churn_storms(),
    num_shards=st.integers(min_value=1, max_value=6),
    rate_kind=st.sampled_from(["unpaced", "fast", "slow"]),
    rebalance=st.booleans(),
    steal=st.booleans(),
    gc_sweep_limit=st.sampled_from([None, 1, 3, 8]),
    hash_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_churn_storm_fifo_conservation_no_stranded_slots(
    storms, num_shards, rate_kind, rebalance, steal, gc_sweep_limit, hash_seed
):
    rate = {"unpaced": None, "fast": 10e9, "slow": 50e6}[rate_kind]
    runtime = ShardedRuntime(
        num_shards,
        sharder=FlowSharder(num_shards, hash_seed=hash_seed),
        default_rate_bps=rate,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=16,
        rebalance_interval_ns=3 * QUANTUM_NS if rebalance else None,
        steal_enabled=steal,
        steal_batch=8,
        steal_min_backlog=1,
        gc_interval_packets=8,  # GC fires *during* the storm, not only after
        gc_sweep_limit=gc_sweep_limit,
    )
    submitted = {}
    total = 0
    for storm in storms:
        packets = [Packet(flow_id=flow_id, size_bytes=1500) for flow_id in storm]
        for packet in packets:
            submitted.setdefault(packet.flow_id, []).append(packet.packet_id)
        runtime.submit_batch(packets)
        runtime.run(until_ns=runtime.simulator.now_ns + 2 * QUANTUM_NS)
        total += len(packets)
    runtime.run()

    # (a) + (b): per-flow FIFO and conservation in one equality.
    assert runtime.transmitted == total
    observed = {}
    for _now, packet in runtime.transmit_log:
        observed.setdefault(packet.flow_id, []).append(packet.packet_id)
    assert observed == submitted

    # (c): once the storm drains and pacing horizons pass, GC — even the
    # bounded incremental variant — releases every slot everywhere.
    assert all(worker.pending == 0 for worker in runtime.workers)
    _drain_gc(runtime)
    assert len(runtime.flows) == 0
    assert all(len(worker.pacing) == 0 for worker in runtime.workers)
    assert runtime.sharder.loaned_flows() == {}
    runtime.sharder.reset_window()
    # Any surviving sharder slot must be an explicit rebalancer pin —
    # placement policy, not garbage.  Everything else was released.
    for flow_id, _slot in runtime.sharder.flows.items():
        assert runtime.sharder.pinned_shard(flow_id) is not None
    if not rebalance:
        assert len(runtime.sharder.flows) == 0
    # The dense table really recycled: reclaim count matches every flow
    # ever admitted (survivor resubmissions may revive a not-yet-swept
    # slot, so reclaims can undershoot the submission count but never the
    # distinct-flow count once fully drained... they must exactly match
    # inserts minus still-live rows, which is all of them).
    assert runtime.flows.stats.gc_reclaimed == runtime.flows.stats.inserts


@given(
    storms=churn_storms(),
    num_shards=st.integers(min_value=1, max_value=4),
    sweep_limit=st.integers(min_value=1, max_value=5),
    horizon_ms=st.integers(min_value=0, max_value=20),
    hash_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_incremental_gc_converges_to_global_live_set(
    storms, num_shards, sweep_limit, horizon_ms, hash_seed
):
    """Bounded sweeps reach the same fixpoint a global scan reaches.

    Hash policy, no rebalancing, no stealing: both runtimes place every
    packet identically, so their pacing state is bit-identical and any
    divergence in the surviving live set is a GC bug.  ``horizon_ms``
    picks the comparison instant — at small horizons slow-paced flows are
    still mid-horizon and must survive on *both* sides.
    """
    def build(limit):
        return ShardedRuntime(
            num_shards,
            sharder=FlowSharder(num_shards, hash_seed=hash_seed),
            default_rate_bps=25e6,  # slow: pacing horizons outlive the run
            quantum_ns=QUANTUM_NS,
            gc_interval_packets=8,
            gc_sweep_limit=limit,
        )

    def drive(runtime):
        for storm in storms:
            runtime.submit_batch(
                [Packet(flow_id=flow_id, size_bytes=1500) for flow_id in storm]
            )
        runtime.run()
        _drain_gc(runtime, runtime.simulator.now_ns + horizon_ms * 1_000_000)
        return {
            "live": sorted(flow for flow, _slot in runtime.flows.items()),
            "pacing": [
                sorted(flow for flow, _slot in worker.pacing.table.items())
                for worker in runtime.workers
            ],
        }

    incremental = drive(build(sweep_limit))
    global_scan = drive(build(None))
    assert incremental == global_scan


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["ensure", "remove", "lookup"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_flow_table_matches_dict_model(ops):
    """The open-addressed table is observationally a dict under any op mix."""
    table = FlowTable()
    values = table.add_column("v", "q", 0)
    reference = {}
    stamp = 0
    for op, flow in ops:
        if op == "ensure":
            slot = table.ensure(flow)
            assert table.created == (flow not in reference)
            if table.created:
                stamp += 1
                reference[flow] = stamp
                values[slot] = stamp
            else:
                assert values[slot] == reference[flow]
        elif op == "remove":
            assert table.remove(flow) == (reference.pop(flow, None) is not None)
        else:
            slot = table.lookup(flow)
            if flow in reference:
                assert slot >= 0
                assert values[slot] == reference[flow]
                assert flow in table
            else:
                assert slot == -1
                assert flow not in table
        assert len(table) == len(reference)
    assert sorted(flow for flow, _slot in table.items()) == sorted(reference)
    assert len(set(table.live_slots())) == len(reference)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_flows=st.integers(min_value=1, max_value=5000),
)
@settings(max_examples=20, deadline=None)
def test_slot_space_stays_dense_under_rolling_churn(seed, num_flows):
    """Rolling create/kill keeps slots bounded by peak concurrency.

    A window of at most 64 flows rolls over ``num_flows`` ids; the dense
    slot space must track the *window*, not the total population — the
    property that makes million-flow churn affordable.
    """
    rng = random.Random(seed)
    table = FlowTable()
    window = []
    for flow in range(num_flows):
        table.ensure(flow)
        window.append(flow)
        if len(window) > 64:
            table.remove(window.pop(rng.randrange(len(window))))
    assert len(table) == len(window)
    assert table.slot_limit <= 128  # peak-live plus growth slack, never O(N)
