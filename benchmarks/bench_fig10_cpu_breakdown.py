"""Figure 10: CPU breakdown (system vs softirq) for Carousel vs Eiffel.

The paper's point: the data-structure (system) overhead of Carousel and
Eiffel is similar; the difference is Carousel firing its timer every wheel
slot while Eiffel programs it for exactly the next deadline (softirq panel).
"""

from conftest import report

from repro.analysis import Series, format_series
from repro.kernel import ShapingExperimentConfig, run_shaping_experiment

CONFIG = ShapingExperimentConfig()


def run_experiment():
    return run_shaping_experiment(
        CONFIG, qdisc_filter=lambda name: name in ("carousel", "eiffel")
    )


def test_fig10_system_vs_softirq(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quantiles = [0.1, 0.5, 0.9]
    panels = []
    for panel, accessor in (
        ("system", "system_cores_cdf"),
        ("softirq", "softirq_cores_cdf"),
    ):
        series = []
        for name in ("carousel", "eiffel"):
            cdf = getattr(result, accessor)(name)
            current = Series(name=f"{name}")
            for q in quantiles:
                current.add(q, round(cdf.quantile(q), 4))
            series.append(current)
        panels.append(
            format_series(
                f"{panel} context cores (x = CDF fraction)",
                series,
                x_label="fraction",
                y_label="cores",
            )
        )
    text = "\n\n".join(panels)
    carousel_softirq = result.softirq_cores_cdf("carousel").median()
    eiffel_softirq = result.softirq_cores_cdf("eiffel").median()
    carousel_system = result.system_cores_cdf("carousel").median()
    eiffel_system = result.system_cores_cdf("eiffel").median()
    text += (
        f"\n\nsystem medians:  carousel={carousel_system:.4f}  eiffel={eiffel_system:.4f}"
        f"\nsoftirq medians: carousel={carousel_softirq:.4f}  eiffel={eiffel_softirq:.4f}"
        f"\nsoftirq ratio carousel/eiffel: {carousel_softirq / max(eiffel_softirq, 1e-9):.1f}x"
    )
    report("Figure 10 — CPU breakdown (Carousel vs Eiffel)", text)
    benchmark.extra_info["softirq_ratio"] = round(
        carousel_softirq / max(eiffel_softirq, 1e-9), 2
    )
    # The paper's observation: similar system cost, much higher softirq for
    # Carousel.
    assert carousel_softirq > eiffel_softirq
    assert abs(carousel_system - eiffel_system) < 5 * max(eiffel_system, 1e-9)
