#!/usr/bin/env python3
"""Scenario compiler walkthrough: experiments as data.

Every experiment in this repo is a composition of the same building blocks —
a substrate (sharded runtime / leaf-spine fabric / BESS pipeline), a policy
tree, a traffic source, an ingress stage, and the assertions that make a run
meaningful.  ``repro.scenario`` turns that composition into a frozen
dataclass tree (:class:`~repro.scenario.ScenarioSpec`) with TOML load/dump,
eager field-naming validation, and a compiler that binds a spec onto the
real pieces.  Three consequences, each demonstrated below:

1. **Scenarios are files.**  ``examples/scenarios/zipf_steal_codel.toml``
   describes a 4-shard stealing runtime behind CoDel-armed RX cores at
   overload; one ``run_scenario`` call compiles and runs it, and its
   ``[assertions]`` table is checked against the finished run.
2. **Invalid scenarios don't run.**  Typos, dangling flow references,
   oversubscribed admission and parallel-backend-incompatible knobs are
   rejected *before* anything is built, each with a typed error naming the
   offending field.
3. **The figure benchmarks are specs too.**  ``figure13_spec()`` and
   ``figure19_spec()`` are the declarative forms of the committed
   benchmarks — the golden-equivalence suite pins them to the hand-wired
   results, so the TOML dump below *is* the benchmark configuration.

Run:  python examples/scenario_spec.py
"""

from pathlib import Path

from repro.scenario import (
    BackendIncompatibleError,
    IngressSpec,
    PolicyTreeSpec,
    RuntimeSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    UnknownNameError,
    dump_toml,
    figure19_spec,
    load_toml_file,
    run_scenario,
    validate,
)

SCENARIO_FILE = Path(__file__).parent / "scenarios" / "zipf_steal_codel.toml"


def run_the_committed_scenario() -> None:
    print(f"--- 1. a scenario from disk: {SCENARIO_FILE.name} ---\n")
    spec = load_toml_file(SCENARIO_FILE)
    print(
        f"  {spec.name}: {spec.runtime.shards} shards "
        f"(stealing={spec.runtime.stealing}), {spec.ingress.cores} RX cores "
        f"({spec.ingress.admission}), {spec.traffic.total_packets} packets of "
        f"Zipf({spec.traffic.zipf_skew}) traffic at "
        f"{spec.traffic.offered_pps:.0e} pps"
    )
    result = run_scenario(spec)  # compiles, runs, checks [assertions]
    print(f"  {result.summary()}")
    print(
        "  All assertion blocks held: conservation, per-flow FIFO across\n"
        "  steals and RX lanes, and no stranded slots/leases after drain.\n"
    )


def show_eager_validation() -> None:
    print("--- 2. invalid scenarios are rejected before they are built ---\n")
    rejects = [
        (
            "a typo'd queue name",
            ScenarioSpec(policy=PolicyTreeSpec(queue="circular_ffs_")),
        ),
        (
            "a pacing override for a flow the traffic never generates",
            ScenarioSpec(
                traffic=TrafficSpec(num_flows=8),
                policy=PolicyTreeSpec(flow_rates=((64, 1e9),)),
            ),
        ),
        (
            "work stealing on the process backend",
            ScenarioSpec(
                runtime=RuntimeSpec(shards=2, backend="process", stealing=True),
            ),
        ),
        (
            "an admission policy with no RX core to run it",
            ScenarioSpec(ingress=IngressSpec(cores=0, admission="codel")),
        ),
    ]
    for title, spec in rejects:
        try:
            validate(spec)
        except (UnknownNameError, BackendIncompatibleError, ValueError) as exc:
            print(f"  {title}:\n    {type(exc).__name__}: {exc}")
    print()


def show_figure_specs_as_toml() -> None:
    print("--- 3. the Figure 19 benchmark, as data ---\n")
    toml_text = dump_toml(figure19_spec())
    for line in toml_text.splitlines():
        print(f"  {line}")
    print(
        "\n  `run_figure19_from_spec(figure19_spec())` is exactly what\n"
        "  benchmarks/bench_fig19_pfabric_fct.py now runs; the golden suite\n"
        "  (tests/scenario/test_scenario_golden.py) pins the compiled results\n"
        "  to the hand-wired FabricExperimentConfig, flow for flow."
    )


def show_a_spec_built_in_python() -> None:
    print("\n--- bonus: the same layer from Python ---\n")
    spec = ScenarioSpec(
        name="two-shards-on-threads",
        seed=7,
        topology=TopologySpec(kind="runtime"),
        policy=PolicyTreeSpec(default_rate_bps=10e9),
        traffic=TrafficSpec(num_flows=8, total_packets=512),
        runtime=RuntimeSpec(shards=2, backend="thread"),
    )
    result = run_scenario(spec)
    print(
        f"  {spec.name}: the statically decomposable subset runs on real\n"
        f"  OS threads through the same spec — {result.summary()}"
    )


def main() -> None:
    run_the_committed_scenario()
    show_eager_validation()
    show_figure_specs_as_toml()
    show_a_spec_built_in_python()


if __name__ == "__main__":
    main()
