"""Simple per-packet policies: FIFO, strict priority, EDF, LSTF, SRTF.

These policies rank each packet individually on enqueue (the original PIFO
feature set).  They are included both as usable schedulers and as the
vocabulary the paper uses when discussing rank ranges: strict priority has a
handful of levels, EDF/LSTF ranks are timestamps over a moving range, SRTF
ranks are flow sizes over a fixed range.
"""

from __future__ import annotations

from typing import Optional

from .base import PacketScheduler
from ..model.packet import Packet
from ..model.pifo import QueueFactory, default_queue_factory
from ..model.transactions import SchedulingTransaction
from ..queues import BucketSpec


class FIFOScheduler(PacketScheduler):
    """Plain first-in-first-out (rank = arrival sequence)."""

    name = "fifo"

    def __init__(
        self,
        buckets: int = 4096,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        self._sequence = 0

        def rank(packet: Packet, context: dict) -> int:
            self._sequence += 1
            return self._sequence

        self._transaction = SchedulingTransaction(
            "fifo", rank, BucketSpec(num_buckets=buckets), queue_factory
        )

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        self._transaction.enqueue(packet)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        return self._transaction.dequeue()

    @property
    def pending(self) -> int:
        return len(self._transaction)


class StrictPriorityScheduler(PacketScheduler):
    """Strict priority over ``levels`` classes (lower class dequeues first).

    The packet's class is read from ``packet.priority_class``; ties within a
    class keep FIFO order.
    """

    name = "strict_priority"

    def __init__(
        self,
        levels: int = 8,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        if levels <= 0:
            raise ValueError("levels must be positive")
        self.levels = levels

        def rank(packet: Packet, context: dict) -> int:
            if not 0 <= packet.priority_class < self.levels:
                raise ValueError(
                    f"priority_class {packet.priority_class} outside [0, {self.levels})"
                )
            return packet.priority_class

        self._transaction = SchedulingTransaction(
            "strict", rank, BucketSpec(num_buckets=levels), queue_factory
        )

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        self._transaction.enqueue(packet)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        return self._transaction.dequeue()

    @property
    def pending(self) -> int:
        return len(self._transaction)


class EarliestDeadlineFirstScheduler(PacketScheduler):
    """Earliest Deadline First: rank = absolute deadline (ns).

    Deadlines are read from ``packet.metadata['deadline_ns']``; packets
    without a deadline rank last within the horizon.
    """

    name = "edf"

    def __init__(
        self,
        horizon_ns: int = 1_000_000_000,
        granularity_ns: int = 1_000,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        self.horizon_ns = horizon_ns
        buckets = max(1, horizon_ns // granularity_ns)

        def rank(packet: Packet, context: dict) -> int:
            deadline = packet.metadata.get("deadline_ns")
            if deadline is None:
                deadline = context.get("now_ns", 0) + horizon_ns
            return int(deadline)

        self._transaction = SchedulingTransaction(
            "edf",
            rank,
            BucketSpec(num_buckets=buckets, granularity=granularity_ns),
            queue_factory,
        )

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        self._transaction.context["now_ns"] = now_ns
        self._transaction.enqueue(packet)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        return self._transaction.dequeue()

    @property
    def pending(self) -> int:
        return len(self._transaction)


class LeastSlackTimeFirstScheduler(PacketScheduler):
    """Least Slack Time First (the universal packet scheduler of Mittal et al.).

    Slack = deadline − now − remaining processing time.  The rank is the
    packet's slack at enqueue time, quantised to the queue granularity;
    smaller slack is served first.
    """

    name = "lstf"

    def __init__(
        self,
        max_slack_ns: int = 1_000_000_000,
        granularity_ns: int = 1_000,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        self.max_slack_ns = max_slack_ns
        buckets = max(1, max_slack_ns // granularity_ns)

        def rank(packet: Packet, context: dict) -> int:
            slack = packet.metadata.get("slack_ns")
            if slack is None:
                deadline = packet.metadata.get("deadline_ns", 0)
                slack = max(0, deadline - context.get("now_ns", 0))
            return min(int(slack), max_slack_ns - 1)

        self._transaction = SchedulingTransaction(
            "lstf",
            rank,
            BucketSpec(num_buckets=buckets, granularity=granularity_ns),
            queue_factory,
        )

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        self._transaction.context["now_ns"] = now_ns
        self._transaction.enqueue(packet)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        return self._transaction.dequeue()

    @property
    def pending(self) -> int:
        return len(self._transaction)


class ShortestRemainingTimeFirstScheduler(PacketScheduler):
    """SRTF on a per-packet basis: rank = remaining flow bytes at enqueue.

    This is the per-packet flavour used inside pFabric switches: each packet
    carries its flow's remaining size and switches serve the smallest first.
    """

    name = "srtf"

    def __init__(
        self,
        max_flow_bytes: int = 10_000_000,
        granularity_bytes: int = 1500,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        buckets = max(1, max_flow_bytes // granularity_bytes)
        self.max_flow_bytes = max_flow_bytes

        def rank(packet: Packet, context: dict) -> int:
            remaining = packet.metadata.get("remaining_bytes", max_flow_bytes - 1)
            return min(int(remaining), max_flow_bytes - 1)

        self._transaction = SchedulingTransaction(
            "srtf",
            rank,
            BucketSpec(num_buckets=buckets, granularity=granularity_bytes),
            queue_factory,
        )

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        self._transaction.enqueue(packet)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        return self._transaction.dequeue()

    @property
    def pending(self) -> int:
        return len(self._transaction)


__all__ = [
    "EarliestDeadlineFirstScheduler",
    "FIFOScheduler",
    "LeastSlackTimeFirstScheduler",
    "ShortestRemainingTimeFirstScheduler",
    "StrictPriorityScheduler",
]
