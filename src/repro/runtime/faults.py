"""Deterministic fault injection for the sharded runtime.

Every layer the runtime has grown — real OS processes over shared-memory
rings, cross-shard ownership leases, an ingress pipeline with backpressure —
assumed until now that nothing ever fails.  This module makes failure a
first-class, *replayable* part of the experiment matrix instead of an
untested code path: a :class:`FaultPlan` is a seeded, spec-driven schedule
of faults armed at the runtime's existing seams, and the recovery machinery
it exercises lives next to each seam:

* ``shard_crash`` / ``shard_stall`` — fired as a shard is about to run its
  N-th tick.  A crash loses the core's private state (timestamp queue and
  lease-deferral buffers); the mailbox survives (it models a shared-memory
  ring owned by the producer side) and pacing state is salvaged through
  :meth:`PacingTable.detach() <repro.runtime.flowstate.PacingTable.detach>`
  / ``install()``.  A stall simply freezes the tick chain until the
  supervisor re-kicks it.
* ``handoff_drop`` — the mailbox handoff seam drops the next ``count``
  packets bound for the target shard before they are committed anywhere,
  the torn-cross-core-write analogue.
* ``ingress_wedge`` — an ingress core stops pulling its RX ring (a wedged
  NAPI poller); arrivals keep landing in the ring until the supervisor
  un-wedges the core.
* ``child_crash`` / ``child_hang`` / ``shm_corrupt`` — the process-backend
  faults: a shard child dies mid-schedule, hangs forever, or pops a torn
  shared-memory frame (see :class:`~repro.runtime.shm.ShmFrameCorrupt`).
  These are consumed by :class:`~repro.runtime.backend.ProcessBackend`,
  whose bounded retry-with-backoff restart replays the crashed shard's
  buffered arrival schedule.

Injection hooks are **zero-cost when disarmed**: the runtime holds ``None``
instead of a plan and every seam guards on one ``is not None`` check, so the
modelled cycle accounts of a clean run are byte-identical with the module
imported or not.

Determinism: :meth:`FaultPlan.from_seed` draws every event from one
``random.Random(seed)`` stream, and firing is keyed to *logical* progress
(per-shard tick ordinals, per-lane pull ordinals, per-seam packet counts),
never to wall time — the same seed against the same workload injects the
same faults at the same points, which is what lets the scenario fuzz suite
compose random faults with random configurations under the existing
conservation / per-flow-FIFO / no-stranded-state net.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.queues.base import CounterStatsMixin

#: Faults injected into the simulated runtime's own seams.
RUNTIME_FAULT_KINDS = ("shard_crash", "shard_stall", "handoff_drop", "ingress_wedge")

#: Faults consumed by the process execution backend.
PROCESS_FAULT_KINDS = ("child_crash", "child_hang", "shm_corrupt")

#: Every fault kind a plan may carry.
FAULT_KINDS = RUNTIME_FAULT_KINDS + PROCESS_FAULT_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One armed fault.

    ``target`` is a shard id (or an ingress lane for ``ingress_wedge``).
    ``at`` is the 1-based ordinal of the logical step the fault fires on:
    the target shard's tick for ``shard_crash``/``shard_stall``, the lane's
    RX pull for ``ingress_wedge``, the consumed burst for the process
    faults.  ``handoff_drop`` instead uses ``count`` — how many packets the
    handoff seam swallows — and fires from the first packet offered.
    """

    kind: str
    target: int = 0
    at: int = 1
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.target < 0:
            raise ValueError("target must be non-negative")
        if self.at <= 0:
            raise ValueError("at must be positive (1-based ordinal)")
        if self.count <= 0:
            raise ValueError("count must be positive")

    def as_dict(self) -> dict:
        """JSON-friendly snapshot."""
        return {"kind": self.kind, "target": self.target, "at": self.at, "count": self.count}


@dataclass(slots=True)
class FaultStats(CounterStatsMixin):
    """Injection and recovery counters kept by the runtime.

    The ``*_injected`` counters record faults that actually fired (a plan
    entry beyond the run's horizon never does); ``packets_lost`` are the
    packets that died with a crashed core's private state, while
    ``packets_salvaged`` survived in its mailbox and were re-ingested by the
    restarted incarnation.  ``recovery_ns_total`` over ``recoveries`` is the
    mean detection-plus-repair latency of the supervision loop.
    """

    crashes_injected: int = 0
    stalls_injected: int = 0
    wedges_injected: int = 0
    handoff_drops: int = 0
    deadline_escalations: int = 0
    shards_recovered: int = 0
    stalls_cleared: int = 0
    wedges_cleared: int = 0
    watchdog_kicks: int = 0
    leases_reclaimed: int = 0
    packets_lost: int = 0
    packets_salvaged: int = 0
    flows_rehomed: int = 0
    shapers_recovered: int = 0
    recoveries: int = 0
    recovery_ns_total: int = 0


class FaultPlan:
    """A deterministic schedule of faults, indexed for cheap armed-checks.

    The runtime polls the plan from its hot seams (one dict probe when the
    target has nothing armed), consuming events one-shot as their logical
    trigger point passes.  Ordinals are counted by the plan itself — one
    :meth:`next_shard_action` call per shard tick, one :meth:`next_wedge`
    call per lane pull — so firing survives a crash-restart of the target
    (the ordinal keeps counting across worker incarnations).
    """

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        self._shard_queues: Dict[int, Deque[FaultEvent]] = {}
        self._shard_ticks: Dict[int, int] = {}
        self._wedge_queues: Dict[int, Deque[FaultEvent]] = {}
        self._wedge_pulls: Dict[int, int] = {}
        self._handoff_budget: Dict[int, int] = {}
        self._process: Dict[int, FaultEvent] = {}
        by_shard: Dict[int, List[FaultEvent]] = {}
        by_lane: Dict[int, List[FaultEvent]] = {}
        for event in self.events:
            if event.kind in ("shard_crash", "shard_stall"):
                by_shard.setdefault(event.target, []).append(event)
            elif event.kind == "ingress_wedge":
                by_lane.setdefault(event.target, []).append(event)
            elif event.kind == "handoff_drop":
                self._handoff_budget[event.target] = (
                    self._handoff_budget.get(event.target, 0) + event.count
                )
            else:  # process fault: first one per shard wins
                self._process.setdefault(event.target, event)
        for shard, entries in by_shard.items():
            entries.sort(key=lambda event: event.at)
            self._shard_queues[shard] = deque(entries)
        for lane, entries in by_lane.items():
            entries.sort(key=lambda event: event.at)
            self._wedge_queues[lane] = deque(entries)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        num_shards: int,
        kinds: Sequence[str] = RUNTIME_FAULT_KINDS,
        events: int = 1,
        max_tick: int = 32,
        max_handoff_drops: int = 4,
        ingress_lanes: int = 0,
    ) -> "FaultPlan":
        """Draw ``events`` random faults from one seeded stream.

        Every draw — kind, target, trigger ordinal, drop count — comes from
        a single ``random.Random(seed)``, so a scenario-level seed pins the
        whole fault schedule exactly as it pins the workload.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if events <= 0:
            raise ValueError("events must be positive")
        if max_tick <= 0:
            raise ValueError("max_tick must be positive")
        if max_handoff_drops <= 0:
            raise ValueError("max_handoff_drops must be positive")
        if not kinds:
            raise ValueError("kinds must be non-empty")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        if "ingress_wedge" in kinds and ingress_lanes <= 0:
            raise ValueError("ingress_wedge faults need ingress_lanes > 0")
        rng = random.Random(seed)
        drawn: List[FaultEvent] = []
        for _ in range(events):
            kind = kinds[rng.randrange(len(kinds))]
            if kind == "ingress_wedge":
                target = rng.randrange(ingress_lanes)
            else:
                target = rng.randrange(num_shards)
            at = rng.randint(1, max_tick)
            count = rng.randint(1, max_handoff_drops) if kind == "handoff_drop" else 1
            drawn.append(FaultEvent(kind=kind, target=target, at=at, count=count))
        return cls(drawn)

    # -- armed-checks polled from the runtime's seams ----------------------

    def next_shard_action(self, shard: int) -> Optional[str]:
        """Fault kind to inject before this shard's next tick, or ``None``.

        Called once per tick of ``shard`` while the plan is armed; counts
        the shard's tick ordinal and pops the next due event.
        """
        queue = self._shard_queues.get(shard)
        if not queue:
            return None
        tick = self._shard_ticks.get(shard, 0) + 1
        self._shard_ticks[shard] = tick
        if tick >= queue[0].at:
            return queue.popleft().kind
        return None

    def next_wedge(self, lane: int) -> bool:
        """True when this ingress lane's next pull should wedge instead."""
        queue = self._wedge_queues.get(lane)
        if not queue:
            return False
        pull = self._wedge_pulls.get(lane, 0) + 1
        self._wedge_pulls[lane] = pull
        if pull >= queue[0].at:
            queue.popleft()
            return True
        return False

    def take_handoff_drops(self, shard: int, offered: int) -> int:
        """How many of ``offered`` packets the handoff seam should drop."""
        budget = self._handoff_budget.get(shard)
        if not budget:
            return 0
        taken = budget if budget < offered else offered
        self._handoff_budget[shard] = budget - taken
        return taken

    def process_fault(self, shard: int) -> Optional[Tuple[str, int]]:
        """The ``(kind, at_burst)`` process fault armed for ``shard``, if any."""
        event = self._process.get(shard)
        if event is None:
            return None
        return event.kind, event.at

    # -- introspection -----------------------------------------------------

    @property
    def max_shard_target(self) -> int:
        """Largest shard id any shard-targeted event names (-1 when none)."""
        targets = [
            event.target for event in self.events if event.kind != "ingress_wedge"
        ]
        return max(targets, default=-1)

    @property
    def wedge_lanes(self) -> Tuple[int, ...]:
        """Ingress lanes targeted by wedge events."""
        return tuple(sorted({e.target for e in self.events if e.kind == "ingress_wedge"}))

    @property
    def has_runtime_faults(self) -> bool:
        """True when any event targets the simulated runtime's seams."""
        return any(event.kind in RUNTIME_FAULT_KINDS for event in self.events)

    @property
    def has_process_faults(self) -> bool:
        """True when any event targets the process backend."""
        return any(event.kind in PROCESS_FAULT_KINDS for event in self.events)

    def describe(self) -> List[dict]:
        """JSON-friendly listing of every armed event (telemetry/debugging)."""
        return [event.as_dict() for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


__all__ = [
    "FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "RUNTIME_FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultStats",
]
