"""Workload generation: flow-size distributions and packet/flow generators."""

from .distributions import (
    DATAMINING_SIZE_CDF,
    EmpiricalCDF,
    FlowSizeDistribution,
    PoissonArrivals,
    WEBSEARCH_SIZE_CDF,
    ZipfFlowSampler,
    load_for_fabric,
)
from .generators import (
    FlowArrival,
    FlowSpec,
    FlowWorkload,
    NeperLikeGenerator,
    OpenLoopBurstSource,
    RoundRobinAnnotator,
    SyntheticPacketGenerator,
)

__all__ = [
    "DATAMINING_SIZE_CDF",
    "EmpiricalCDF",
    "FlowArrival",
    "FlowSpec",
    "FlowSizeDistribution",
    "FlowWorkload",
    "NeperLikeGenerator",
    "OpenLoopBurstSource",
    "PoissonArrivals",
    "RoundRobinAnnotator",
    "SyntheticPacketGenerator",
    "WEBSEARCH_SIZE_CDF",
    "ZipfFlowSampler",
    "load_for_fabric",
]
