"""Unit and integration tests for the BESS-like userspace substrate."""

import pytest

from repro.bess import (
    BessExperimentConfig,
    BufferModule,
    HClockEiffelModule,
    HClockHeapModule,
    PFabricEiffelModule,
    PFabricHeapModule,
    Pipeline,
    Sink,
    Source,
    crossover_flows,
    hclock_class_config,
    measure_max_rate,
    run_figure12,
    run_figure15,
)
from repro.core.model import Packet
from repro.traffic import RoundRobinAnnotator, SyntheticPacketGenerator


class TestPipeline:
    def test_pipeline_moves_packets_to_sink(self):
        generator = SyntheticPacketGenerator(
            packet_bytes=1500, batch_size=16, annotator=RoundRobinAnnotator(4)
        )
        scheduler = PFabricEiffelModule()
        pipeline = Pipeline([Source(generator), scheduler, Sink()])
        report = pipeline.run(batches=10)
        assert report.packets > 0
        assert report.cycles > 0
        assert report.cycles_per_packet > 0

    def test_pipeline_requires_sink_last(self):
        generator = SyntheticPacketGenerator(batch_size=4)
        pipeline = Pipeline([Source(generator), PFabricEiffelModule()])
        with pytest.raises(TypeError):
            pipeline.run(batches=1)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_max_rate_capped_by_line_rate(self):
        generator = SyntheticPacketGenerator(batch_size=8, annotator=RoundRobinAnnotator(2))
        pipeline = Pipeline([Source(generator), PFabricEiffelModule(), Sink()])
        report = pipeline.run(batches=4)
        rate = pipeline.max_rate_bps(report, packet_bytes=1500, line_rate_bps=10e9)
        assert 0 < rate <= 10e9
        limited = pipeline.max_rate_bps(
            report, packet_bytes=1500, line_rate_bps=10e9, rate_limit_bps=5e9
        )
        assert limited <= 5e9


class TestBufferModule:
    def test_batches_per_flow(self):
        buffer_module = BufferModule(batch_bytes=3000)
        first = buffer_module.process_batch([Packet(flow_id=1, size_bytes=1500)], 0)
        assert first == []  # below threshold, staged
        second = buffer_module.process_batch([Packet(flow_id=1, size_bytes=1500)], 0)
        assert len(second) == 2  # threshold reached, burst released

    def test_flush(self):
        buffer_module = BufferModule(batch_bytes=10_000)
        buffer_module.process_batch([Packet(flow_id=1, size_bytes=100)], 0)
        assert len(buffer_module.flush()) == 1
        assert buffer_module.flush() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferModule(batch_bytes=0)


class TestMeasureMaxRate:
    def test_eiffel_faster_than_heap_hclock_at_scale(self):
        config = BessExperimentConfig()
        flows = 2000
        classes = hclock_class_config(flows)
        eiffel_rate = measure_max_rate(
            HClockEiffelModule(flows, classes), flows, config, measure_packets=128
        )
        heap_rate = measure_max_rate(
            HClockHeapModule(flows, classes), flows, config, measure_packets=128
        )
        assert eiffel_rate > heap_rate

    def test_eiffel_faster_than_heap_pfabric_at_scale(self):
        config = BessExperimentConfig()
        flows = 2000
        eiffel_rate = measure_max_rate(
            PFabricEiffelModule(), flows, config, measure_packets=128
        )
        heap_rate = measure_max_rate(
            PFabricHeapModule(), flows, config, measure_packets=128
        )
        assert eiffel_rate > heap_rate

    def test_rate_limit_caps_result(self):
        config = BessExperimentConfig()
        rate = measure_max_rate(
            PFabricEiffelModule(), 10, config, rate_limit_bps=5e9, measure_packets=64
        )
        assert rate <= 5e9


class TestFigureRuns:
    def test_figure12_shape(self):
        results = run_figure12(
            [10, 1000], config=BessExperimentConfig(), systems=["eiffel", "hclock"]
        )
        eiffel = results["eiffel"]
        hclock = results["hclock"]
        # Both sustain line rate at 10 flows; at 1000 flows Eiffel still does
        # and the heap baseline has collapsed.
        assert eiffel.y[0] == pytest.approx(10_000, rel=0.01)
        assert hclock.y[0] == pytest.approx(10_000, rel=0.01)
        assert eiffel.y[1] > hclock.y[1]
        assert crossover_flows(eiffel, 10e9) >= 1000
        assert crossover_flows(hclock, 10e9) == 10

    def test_figure15_shape(self):
        results = run_figure15([100, 5000], config=BessExperimentConfig())
        eiffel = results["pfabric_eiffel"]
        heap = results["pfabric_heap"]
        assert eiffel.y[-1] > heap.y[-1]
        # Eiffel sustains line rate at 5k flows (the paper shows 5x more
        # flows than the heap at line rate).
        assert eiffel.y[-1] == pytest.approx(10_000, rel=0.01)
