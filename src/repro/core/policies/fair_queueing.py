"""Per-flow fair-queueing policies: SFQ/WFQ, DRR and Longest Queue First.

These exercise Eiffel's per-flow primitive: a single flow-ordering PIFO plus
per-flow FIFOs, with ranks updated on enqueue (and, for LQF, on dequeue too —
the paper's Figure 6 example).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from .base import PacketScheduler
from ..model.packet import Flow, FlowTable, Packet
from ..model.pifo import QueueFactory, default_queue_factory
from ..model.transactions import PerFlowSchedulingTransaction
from ..queues import BucketSpec


class StartTimeFairQueueingScheduler(PacketScheduler):
    """Start-time fair queueing (the practical WFQ approximation).

    Every flow tracks a virtual finish time advanced by
    ``packet_bytes / weight``; the flow's rank is its next packet's virtual
    start time.  Weights default to 1.0 and may be set per flow with
    :meth:`set_weight`.
    """

    name = "sfq"

    def __init__(
        self,
        buckets: int = 16_384,
        quantum_bytes: int = 100,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        if quantum_bytes <= 0:
            raise ValueError("quantum_bytes must be positive")
        self.quantum_bytes = quantum_bytes
        self._weights: Dict[int, float] = {}
        self._virtual_time = 0

        def on_enqueue(flow: Flow, packet: Optional[Packet], context: dict) -> None:
            weight = self._weights.get(flow.flow_id, flow.state.weight)
            finish = flow.state.extra.get("finish_vt", 0)
            start = max(self._virtual_time, finish)
            assert packet is not None
            increment = max(1, int(packet.size_bytes / weight / self.quantum_bytes))
            flow.state.extra["finish_vt"] = start + increment
            if flow.state.backlog_packets == 1:
                # Newly backlogged flow: its rank is its start tag.
                flow.rank = start

        def on_dequeue(flow: Flow, packet: Optional[Packet], context: dict) -> None:
            self._virtual_time = max(
                self._virtual_time, flow.rank
            )
            head = flow.front()
            if head is not None:
                weight = self._weights.get(flow.flow_id, flow.state.weight)
                increment = max(1, int(head.size_bytes / weight / self.quantum_bytes))
                flow.rank = flow.state.extra.get("finish_vt", 0) - increment

        self._transaction = PerFlowSchedulingTransaction(
            "sfq",
            on_enqueue,
            BucketSpec(num_buckets=buckets),
            on_dequeue=on_dequeue,
            queue_factory=queue_factory,
        )

    def set_weight(self, flow_id: int, weight: float) -> None:
        """Configure the fair-share weight of ``flow_id``."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[flow_id] = weight

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        self._transaction.enqueue(packet)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        return self._transaction.dequeue()

    @property
    def pending(self) -> int:
        return len(self._transaction)

    @property
    def active_flows(self) -> int:
        """Flows with at least one queued packet."""
        return self._transaction.active_flow_count


class LongestQueueFirstScheduler(PacketScheduler):
    """Longest Queue First — the paper's Figure 6 example, verbatim.

    The flow rank is (the negation of) its backlog so the most backlogged
    flow dequeues first; both enqueue and dequeue re-rank the flow, which is
    exactly the pair of primitives Eiffel adds to the PIFO model.
    """

    name = "lqf"

    def __init__(
        self,
        max_backlog: int = 65_536,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        self.max_backlog = max_backlog

        def rank_from_length(flow: Flow) -> int:
            # Longer queues must dequeue first; integer ranks are
            # min-ordered, so invert the backlog against the maximum.
            return max(0, self.max_backlog - flow.state.backlog_packets)

        def on_enqueue(flow: Flow, packet: Optional[Packet], context: dict) -> None:
            flow.rank = rank_from_length(flow)

        def on_dequeue(flow: Flow, packet: Optional[Packet], context: dict) -> None:
            flow.rank = rank_from_length(flow)

        self._transaction = PerFlowSchedulingTransaction(
            "lqf",
            on_enqueue,
            BucketSpec(num_buckets=max_backlog),
            on_dequeue=on_dequeue,
            queue_factory=queue_factory,
        )

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        self._transaction.enqueue(packet)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        return self._transaction.dequeue()

    @property
    def pending(self) -> int:
        return len(self._transaction)


class DeficitRoundRobinScheduler(PacketScheduler):
    """Deficit Round Robin over active flows.

    DRR is not rank-based (it is a list-walking algorithm), so it does not
    use a PIFO; it is included as a classical fair-queueing baseline for the
    policy test-suite and the ablation benchmarks.
    """

    name = "drr"

    def __init__(self, quantum_bytes: int = 1500) -> None:
        if quantum_bytes <= 0:
            raise ValueError("quantum_bytes must be positive")
        self.quantum_bytes = quantum_bytes
        self._flows = FlowTable()
        self._active: Deque[int] = deque()
        self._deficits: Dict[int, int] = {}
        self._pending = 0

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        flow = self._flows.get(packet.flow_id)
        was_empty = flow.empty
        flow.push(packet)
        self._pending += 1
        if was_empty:
            self._active.append(packet.flow_id)
            self._deficits.setdefault(packet.flow_id, 0)

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        if self._pending == 0:
            return None
        # Walk the active list, topping up deficits, until some flow's deficit
        # covers its head packet.  Each full pass adds one quantum to every
        # visited flow, so the loop terminates for any finite packet size.
        while True:
            flow_id = self._active[0]
            flow = self._flows.get(flow_id)
            head = flow.front()
            if head is None:
                self._active.popleft()
                continue
            if self._deficits[flow_id] < head.size_bytes:
                self._deficits[flow_id] += self.quantum_bytes
                self._active.rotate(-1)
                continue
            self._deficits[flow_id] -= head.size_bytes
            packet = flow.pop()
            self._pending -= 1
            if flow.empty:
                self._active.popleft()
                self._deficits[flow_id] = 0
            return packet

    @property
    def pending(self) -> int:
        return self._pending


__all__ = [
    "DeficitRoundRobinScheduler",
    "LongestQueueFirstScheduler",
    "StartTimeFairQueueingScheduler",
]
