#!/usr/bin/env python3
"""Quickstart: build an Eiffel scheduler from a declarative policy.

The policy gives two tenants a 70/30 weighted split of a paced 100 Mbps
aggregate, with the video tenant additionally rate limited to 40 Mbps.  The
compiler turns the description into cFFS-backed PIFO blocks plus one shared
decoupled shaper; we then push a burst of packets through it and watch the
order and timing the scheduler produces.

Run:  python examples/quickstart.py
"""

from repro.core.model import Packet, PolicySpec, PolicyNodeSpec, Discipline
from repro.core.model import compile_policy, describe_policy


def build_policy() -> PolicySpec:
    return PolicySpec(
        name="quickstart",
        nodes=[
            PolicyNodeSpec(name="root", discipline=Discipline.WFQ),
            PolicyNodeSpec(name="web", parent="root", weight=0.3),
            PolicyNodeSpec(
                name="video", parent="root", weight=0.7, rate_limit_bps=40e6
            ),
        ],
        pacing_rate_bps=100e6,
        flow_to_leaf={1: "web", 2: "video"},
    )


def main() -> None:
    policy = build_policy()
    print(describe_policy(policy))
    print()

    scheduler = compile_policy(policy)

    # Offer 20 packets per flow at t=0.
    for _ in range(20):
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        scheduler.enqueue(Packet(flow_id=2, size_bytes=1500), now_ns=0)
    print(f"enqueued {scheduler.stats.enqueued} packets "
          f"({scheduler.stats.shaped} passed through the shaper)")

    # Poll the scheduler every millisecond and record what leaves the port.
    transmissions = []
    for ms in range(0, 12):
        now_ns = ms * 1_000_000
        for packet in scheduler.dequeue_all_due(now_ns):
            transmissions.append((now_ns, packet.flow_id))

    web = sum(1 for _, flow in transmissions if flow == 1)
    video = sum(1 for _, flow in transmissions if flow == 2)
    print(f"transmitted within 12 ms: web={web} packets, video={video} packets")
    print("first ten transmissions (time_ms, flow):")
    for now_ns, flow in transmissions[:10]:
        print(f"  t={now_ns / 1e6:5.2f} ms  flow={flow}")
    print()
    print("The video tenant is gated by its 40 Mbps limit (about 3.3 packets/ms)")
    print("while web packets ride the 100 Mbps aggregate pacing unimpeded.")


if __name__ == "__main__":
    main()
