"""Shard-scaling benchmark — the horizontal-scaling counterpart of Figure 13.

Sweeps the sharded runtime over shard counts (1/2/4/8) under two flow-hash
workloads:

* **uniform** — flow ids drawn uniformly, the case RSS-style hashing is
  built for: per-shard load splits evenly and aggregate throughput should
  improve monotonically with shard count;
* **zipf** — Zipf-skewed flow popularity (a few elephant flows carry most
  packets), the adversarial case: the shard that drew the hottest flows
  becomes the bottleneck core, and only the skew-aware rebalancer (run with
  and without) can repair the imbalance that hashing cannot.

Throughput is *modelled* the way a real multi-core deployment is limited:
every shard is one core, all cores run concurrently, so the run's wall time
is the bottleneck shard's cycle consumption at the modelled clock —
``aggregate ops/sec = packets * clock / max_shard_cycles``.  The harness's
single-threaded wall-clock rate is also recorded (as ``harness_ops_per_sec``)
but carries no scaling signal, since the simulation itself runs on one
Python thread.

Results land in ``BENCH_sharding.json`` at the repo root: the scaling-axis
perf artifact future PRs build on.  Run standalone
(``python benchmarks/bench_sharding.py``) to regenerate it with full
iteration counts; the pytest entry points run a smoke-sized sweep with the
scaling assertions.
"""

import json
import random
import time
from pathlib import Path

from conftest import report

from repro.core.model.packet import Packet
from repro.cpu import CpuMeter
from repro.runtime import ShardedRuntime
from repro.traffic import ZipfFlowSampler

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharding.json"

SHARD_COUNTS = [1, 2, 4, 8]
NUM_FLOWS = 256
RATE_BPS = 10e9  # per-flow pacing rate (10G access links)
PACKET_BYTES = 1500
QUANTUM_NS = 10_000
BATCH_PER_QUANTUM = 64
# Ingress rate is set so flows drain between bursts (1500 B at 10 Gbps is
# 1.2 us, ~8 packets per quantum per flow): idle gaps are what allow the
# FIFO-safe rebalancer to land its migrations, exactly as kernel RPS/mq only
# re-steer a flow whose queue went empty.
INGRESS_BATCH = 16  # packets offered per quantum of simulated ingress
ZIPF_SKEW = 1.2
REBALANCE_INTERVAL_NS = 16 * QUANTUM_NS
SEED = 20_190_226  # NSDI'19

FULL_PACKETS = 20_000
SMOKE_PACKETS = 4_000

METER = CpuMeter()  # 3 GHz modelled cores


def _flow_sequence(distribution: str, num_packets: int) -> list:
    rng = random.Random(SEED)
    if distribution == "uniform":
        return [rng.randrange(NUM_FLOWS) for _ in range(num_packets)]
    if distribution == "zipf":
        return ZipfFlowSampler(NUM_FLOWS, skew=ZIPF_SKEW, rng=rng).sample_flows(
            num_packets
        )
    raise ValueError(f"unknown distribution {distribution!r}")


def _run_one(num_shards: int, flow_ids: list, rebalance: bool) -> dict:
    """One configuration: drive the runtime to completion, report telemetry."""
    runtime = ShardedRuntime(
        num_shards,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=BATCH_PER_QUANTUM,
        rebalance_interval_ns=REBALANCE_INTERVAL_NS if rebalance else None,
        record_transmits=False,
    )
    simulator = runtime.simulator

    # Open-loop ingress: INGRESS_BATCH packets per quantum, as a NIC RX loop
    # would hand bursts to the dispatching core.
    for index in range(0, len(flow_ids), INGRESS_BATCH):
        chunk = flow_ids[index : index + INGRESS_BATCH]
        when_ns = (index // INGRESS_BATCH) * QUANTUM_NS

        def offer(chunk=chunk) -> None:
            runtime.submit_batch(
                [Packet(flow_id=flow_id, size_bytes=PACKET_BYTES) for flow_id in chunk]
            )

        simulator.schedule_at(when_ns, offer)

    start = time.perf_counter()
    runtime.run()
    elapsed = time.perf_counter() - start

    telemetry = runtime.telemetry()
    assert telemetry.transmitted == len(flow_ids)
    packets = telemetry.transmitted
    aggregate_ops = packets * METER.cycles_per_second / telemetry.max_shard_cycles
    return {
        "num_shards": num_shards,
        "transmitted": packets,
        "aggregate_ops_per_sec": aggregate_ops,
        "max_shard_cycles": telemetry.max_shard_cycles,
        "total_cycles": telemetry.total_cycles,
        "cycles_per_packet": telemetry.total_cycles / packets,
        "bottleneck_cycles_per_packet": telemetry.max_shard_cycles / packets,
        "imbalance": telemetry.imbalance,
        "migrations": telemetry.migrations_applied,
        "rebalance_rounds": telemetry.rebalance_rounds,
        "per_shard_transmitted": [
            shard.transmitted for shard in telemetry.shards
        ],
        "harness_ops_per_sec": packets / max(elapsed, 1e-9),
        "elapsed_sec": elapsed,
    }


def run_sharding_sweep(num_packets: int = FULL_PACKETS) -> dict:
    """Full sweep: shard counts x {uniform, zipf} x {rebalance off, on}."""
    scenarios: dict = {}
    for distribution in ("uniform", "zipf"):
        flow_ids = _flow_sequence(distribution, num_packets)
        scenarios[distribution] = {}
        for rebalance in (False, True):
            key = "rebalance_on" if rebalance else "rebalance_off"
            scenarios[distribution][key] = {
                str(shards): _run_one(shards, flow_ids, rebalance)
                for shards in SHARD_COUNTS
            }
    return {
        "benchmark": "sharding_scaling",
        "description": (
            "Sharded runtime throughput vs shard count under uniform and "
            "Zipf-skewed flow hashes, with and without the skew-aware "
            "rebalancer.  aggregate_ops_per_sec models concurrent per-core "
            "execution: packets * clock / bottleneck-shard cycles."
        ),
        "workload": {
            "num_packets": num_packets,
            "num_flows": NUM_FLOWS,
            "flow_rate_bps": RATE_BPS,
            "packet_bytes": PACKET_BYTES,
            "quantum_ns": QUANTUM_NS,
            "batch_per_quantum": BATCH_PER_QUANTUM,
            "ingress_batch": INGRESS_BATCH,
            "zipf_skew": ZIPF_SKEW,
            "rebalance_interval_ns": REBALANCE_INTERVAL_NS,
            "seed": SEED,
            "modelled_clock_hz": METER.cycles_per_second,
        },
        "shard_counts": SHARD_COUNTS,
        "scenarios": scenarios,
    }


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_sharding.json`` (the scaling-trajectory artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_sweep(results: dict) -> str:
    lines = []
    header = f"{'scenario':<24}" + "".join(f"s={shards:<11}" for shards in results["shard_counts"])
    lines.append(header + " (aggregate Mops/sec | imbalance)")
    for distribution, by_rebalance in results["scenarios"].items():
        for key, by_shards in by_rebalance.items():
            row = f"{distribution + '/' + key:<24}"
            for shards in results["shard_counts"]:
                run = by_shards[str(shards)]
                row += (
                    f"{run['aggregate_ops_per_sec'] / 1e6:5.2f}|{run['imbalance']:4.2f}  "
                )
            lines.append(row)
    return "\n".join(lines)


# -- pytest entry points ------------------------------------------------------


def test_sharding_scaling_sweep(benchmark, tmp_path):
    results = benchmark.pedantic(
        run_sharding_sweep, kwargs={"num_packets": SMOKE_PACKETS}, rounds=1, iterations=1
    )
    # The committed BENCH_sharding.json holds the full-size run (plus
    # machine-dependent wall-clock numbers), so the test writes to a scratch
    # path; regenerate deliberately via `python benchmarks/bench_sharding.py`.
    path = write_artifact(results, tmp_path / "BENCH_sharding.json")
    report("Sharding sweep — aggregate throughput vs shard count", _format_sweep(results))
    benchmark.extra_info["artifact"] = str(path)

    uniform = results["scenarios"]["uniform"]["rebalance_off"]
    # The acceptance gate: aggregate throughput improves monotonically from
    # 1 -> 4 shards under the uniform hash, and 4 shards beat 1 outright.
    assert (
        uniform["1"]["aggregate_ops_per_sec"]
        < uniform["2"]["aggregate_ops_per_sec"]
        < uniform["4"]["aggregate_ops_per_sec"]
    ), _format_sweep(results)
    assert uniform["4"]["aggregate_ops_per_sec"] > uniform["1"]["aggregate_ops_per_sec"]
    # Conservation at every point of the sweep.
    for by_rebalance in results["scenarios"].values():
        for by_shards in by_rebalance.values():
            for run in by_shards.values():
                assert run["transmitted"] == SMOKE_PACKETS


def test_zipf_rebalancing_repairs_imbalance(benchmark):
    flow_ids = _flow_sequence("zipf", SMOKE_PACKETS)

    def run_pair():
        return (
            _run_one(4, flow_ids, rebalance=False),
            _run_one(4, flow_ids, rebalance=True),
        )

    static, rebalanced = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    report(
        "Zipf skew, 4 shards — static vs rebalanced",
        (
            f"static:     imbalance={static['imbalance']:.2f} "
            f"agg={static['aggregate_ops_per_sec'] / 1e6:.2f} Mops/s\n"
            f"rebalanced: imbalance={rebalanced['imbalance']:.2f} "
            f"agg={rebalanced['aggregate_ops_per_sec'] / 1e6:.2f} Mops/s "
            f"({rebalanced['migrations']} migrations)"
        ),
    )
    assert rebalanced["migrations"] > 0, "rebalancer never migrated a flow"
    assert rebalanced["imbalance"] <= static["imbalance"] + 1e-9
    assert (
        rebalanced["aggregate_ops_per_sec"]
        >= static["aggregate_ops_per_sec"] * 0.95
    )


if __name__ == "__main__":
    sweep = run_sharding_sweep()
    artifact = write_artifact(sweep)
    print(_format_sweep(sweep))
    print(f"\nwrote {artifact}")
