"""Discrete-event simulation core for the datacenter fabric experiments."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Cancellation is *lazy*: the heap entry stays in place and is discarded
    when it reaches the front, so ``cancel`` is O(1) and never perturbs the
    ordering of the remaining events.  Shard wake-up timers and rebalancing
    sweeps (``repro.runtime``) re-program their timers far more often than
    they let them fire, which is exactly the pattern lazy removal favours —
    the same reason kernel hrtimers keep cancelled timers out of the softirq
    path instead of re-heapifying.
    """

    __slots__ = ("time_ns", "_callback", "_fired", "_simulator")

    def __init__(
        self,
        time_ns: int,
        callback: Callable[[], None],
        simulator: Optional["Simulator"] = None,
    ) -> None:
        self.time_ns = time_ns
        self._callback: Optional[Callable[[], None]] = callback
        self._fired = False
        self._simulator = simulator

    @property
    def active(self) -> bool:
        """True while the event is still scheduled to fire."""
        return self._callback is not None

    @property
    def fired(self) -> bool:
        """True once the event has run normally."""
        return self._fired

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled (it never fired and never
        will); False for an event that ran normally."""
        return self._callback is None and not self._fired

    def cancel(self) -> bool:
        """Prevent the event from firing; returns False when already fired
        or cancelled.

        Notifies the owning simulator so its pending-event count stays exact
        and cancel-heavy workloads keep triggering heap compaction —
        ``handle.cancel()`` and ``Simulator.cancel(handle)`` are equivalent.
        """
        if self._callback is None:
            return False
        self._callback = None
        if self._simulator is not None:
            self._simulator.notify_cancelled()
        return True

    def _fire(self) -> None:
        callback = self._callback
        assert callback is not None
        self._callback = None
        self._fired = True
        callback()


class Simulator:
    """A minimal discrete-event simulator (nanosecond clock).

    Events are ``(time, sequence, handle)`` triples in a binary heap; the
    sequence number keeps same-time events in scheduling order, which keeps
    packet orderings deterministic.  ``schedule`` / ``schedule_at`` return a
    cancellable :class:`EventHandle`; cancelled entries are skipped lazily
    when they surface at the head of the heap.
    """

    def __init__(self) -> None:
        self.now_ns = 0
        self._events: list[tuple[int, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._cancelled_pending = 0

    def schedule(self, delay_ns: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError("delay_ns must be non-negative")
        return self.schedule_at(self.now_ns + delay_ns, callback)

    def schedule_at(self, time_ns: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute ``time_ns`` (>= now)."""
        if time_ns < self.now_ns:
            raise ValueError("cannot schedule in the past")
        handle = EventHandle(time_ns, callback, simulator=self)
        heapq.heappush(self._events, (time_ns, next(self._sequence), handle))
        return handle

    def _discard_cancelled_head(self) -> bool:
        """Drop cancelled events off the head; True when one was dropped."""
        if self._events and self._events[0][2].cancelled:
            heapq.heappop(self._events)
            if self._cancelled_pending > 0:
                self._cancelled_pending -= 1
            return True
        return False

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the horizon / event budget / queue exhaustion.

        Returns the number of events processed by this call (cancelled
        events are discarded without counting against ``max_events``).
        """
        processed = 0
        while self._events:
            if self._discard_cancelled_head():
                continue
            if until_ns is not None and self._events[0][0] > until_ns:
                break
            if max_events is not None and processed >= max_events:
                break
            time_ns, _seq, handle = heapq.heappop(self._events)
            self.now_ns = time_ns
            handle._fire()
            processed += 1
        self._processed += processed
        return processed

    def notify_cancelled(self) -> None:
        """Account one newly cancelled event (keeps ``pending_events`` exact).

        Called automatically by :meth:`EventHandle.cancel` for handles this
        simulator issued; external callers never need it.
        """
        self._cancelled_pending += 1
        # Compact when the heap is mostly corpses so a cancel-heavy workload
        # (timer re-programming) cannot grow the heap without bound.
        if self._cancelled_pending > 64 and self._cancelled_pending > len(self._events) // 2:
            live = [entry for entry in self._events if entry[2].active]
            heapq.heapify(live)
            self._events = live
            self._cancelled_pending = 0

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event; returns False when it already fired.

        Equivalent to ``handle.cancel()`` (the handle notifies this
        simulator's accounting itself).
        """
        return handle.cancel()

    @property
    def pending_events(self) -> int:
        """Events still queued and not cancelled."""
        return len(self._events) - self._cancelled_pending

    @property
    def processed_events(self) -> int:
        """Total events processed so far."""
        return self._processed


__all__ = ["EventHandle", "Simulator"]
