"""Unit tests for the fair-queueing family (SFQ, LQF, DRR)."""

import pytest

from repro.core.model import Packet
from repro.core.policies import (
    DeficitRoundRobinScheduler,
    LongestQueueFirstScheduler,
    StartTimeFairQueueingScheduler,
)


def flood(scheduler, flow_id, count, size=1000):
    for _ in range(count):
        scheduler.enqueue(Packet(flow_id=flow_id, size_bytes=size))


def service_counts(scheduler, rounds):
    counts = {}
    for _ in range(rounds):
        packet = scheduler.dequeue()
        if packet is None:
            break
        counts[packet.flow_id] = counts.get(packet.flow_id, 0) + 1
    return counts


class TestSFQ:
    def test_equal_weights_near_equal_service(self):
        scheduler = StartTimeFairQueueingScheduler()
        flood(scheduler, 1, 100)
        flood(scheduler, 2, 100)
        counts = service_counts(scheduler, 100)
        assert abs(counts.get(1, 0) - counts.get(2, 0)) <= 10

    def test_weighted_service(self):
        scheduler = StartTimeFairQueueingScheduler()
        scheduler.set_weight(1, 3.0)
        scheduler.set_weight(2, 1.0)
        flood(scheduler, 1, 200)
        flood(scheduler, 2, 200)
        counts = service_counts(scheduler, 120)
        # Flow 1 should receive roughly three times the service of flow 2.
        assert counts[1] > 2 * counts[2]

    def test_flow_fifo_preserved(self):
        scheduler = StartTimeFairQueueingScheduler()
        packets = [Packet(flow_id=1, size_bytes=100) for _ in range(10)]
        for packet in packets:
            scheduler.enqueue(packet)
        drained = [scheduler.dequeue().packet_id for _ in range(10)]
        assert drained == [p.packet_id for p in packets]

    def test_weight_validation(self):
        scheduler = StartTimeFairQueueingScheduler()
        with pytest.raises(ValueError):
            scheduler.set_weight(1, 0)
        with pytest.raises(ValueError):
            StartTimeFairQueueingScheduler(quantum_bytes=0)

    def test_all_packets_drain(self):
        scheduler = StartTimeFairQueueingScheduler()
        for flow in range(10):
            flood(scheduler, flow, 5)
        assert scheduler.pending == 50
        drained = 0
        while scheduler.dequeue() is not None:
            drained += 1
        assert drained == 50
        assert scheduler.active_flows == 0


class TestLQF:
    def test_longest_queue_served_first(self):
        scheduler = LongestQueueFirstScheduler()
        flood(scheduler, 1, 5)
        flood(scheduler, 2, 1)
        assert scheduler.dequeue().flow_id == 1

    def test_dequeue_reranks(self):
        scheduler = LongestQueueFirstScheduler()
        flood(scheduler, 1, 3)
        flood(scheduler, 2, 2)
        served = [scheduler.dequeue().flow_id for _ in range(3)]
        # After serving flow 1 twice both flows are tied at 2 and 1... the
        # exact tie-breaking is FIFO, but flow 1 must be served first.
        assert served[0] == 1

    def test_drains_completely(self):
        scheduler = LongestQueueFirstScheduler()
        flood(scheduler, 1, 4)
        flood(scheduler, 2, 4)
        drained = sum(1 for _ in range(8) if scheduler.dequeue() is not None)
        assert drained == 8
        assert scheduler.empty


class TestDRR:
    def test_equal_quantum_equal_service(self):
        scheduler = DeficitRoundRobinScheduler(quantum_bytes=1000)
        flood(scheduler, 1, 50, size=1000)
        flood(scheduler, 2, 50, size=1000)
        counts = service_counts(scheduler, 40)
        assert abs(counts.get(1, 0) - counts.get(2, 0)) <= 2

    def test_large_packets_accumulate_deficit(self):
        scheduler = DeficitRoundRobinScheduler(quantum_bytes=500)
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500))
        packet = scheduler.dequeue()
        assert packet is not None
        assert packet.size_bytes == 1500

    def test_byte_fairness_with_mixed_sizes(self):
        scheduler = DeficitRoundRobinScheduler(quantum_bytes=1500)
        # Flow 1 sends small packets, flow 2 sends MTU packets.
        flood(scheduler, 1, 300, size=100)
        flood(scheduler, 2, 30, size=1500)
        bytes_served = {1: 0, 2: 0}
        for _ in range(200):
            packet = scheduler.dequeue()
            if packet is None:
                break
            bytes_served[packet.flow_id] += packet.size_bytes
            if bytes_served[2] >= 15_000:
                break
        # Byte-level service should be roughly balanced while both backlogged.
        ratio = bytes_served[1] / max(1, bytes_served[2])
        assert 0.5 <= ratio <= 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeficitRoundRobinScheduler(quantum_bytes=0)

    def test_empty(self):
        scheduler = DeficitRoundRobinScheduler()
        assert scheduler.dequeue() is None
