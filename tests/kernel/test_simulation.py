"""Integration tests for the kernel simulation and the Use Case 1 experiment."""

import pytest

from repro.core.model import Packet
from repro.kernel import (
    EiffelQdisc,
    KernelSimulation,
    ShapingExperimentConfig,
    run_shaping_experiment,
)
from repro.traffic import NeperLikeGenerator


class TestKernelSimulation:
    def test_interval_transmits_paced_traffic(self):
        qdisc = EiffelQdisc(default_rate_bps=None)
        qdisc.set_flow_rate(0, 12e6)
        simulation = KernelSimulation(qdisc, tsq_limit=4)
        arrivals = [
            (i * 1_000_000, Packet(flow_id=0, size_bytes=1500, arrival_ns=i * 1_000_000))
            for i in range(10)
        ]
        sample = simulation.run_interval(arrivals, start_ns=0, duration_ns=20_000_000)
        assert sample.packets > 0
        assert simulation.transmitted > 0
        assert sample.total_cycles > 0

    def test_tsq_defers_excess_packets(self):
        qdisc = EiffelQdisc()
        qdisc.set_flow_rate(0, 1e6)  # very slow flow
        simulation = KernelSimulation(qdisc, tsq_limit=1)
        arrivals = [
            (i, Packet(flow_id=0, size_bytes=1500, arrival_ns=i)) for i in range(20)
        ]
        simulation.run_interval(arrivals, start_ns=0, duration_ns=1_000_000)
        assert simulation.deferred > 0

    def test_timer_fires_recorded(self):
        qdisc = EiffelQdisc()
        qdisc.set_flow_rate(0, 12e6)
        simulation = KernelSimulation(qdisc, tsq_limit=8)
        arrivals = [
            (0, Packet(flow_id=0, size_bytes=1500)),
            (1000, Packet(flow_id=0, size_bytes=1500)),
        ]
        simulation.run_interval(arrivals, start_ns=0, duration_ns=5_000_000)
        assert qdisc.stats.timer_fires > 0
        assert qdisc.stats.timer_programs > 0


class TestNeperGenerator:
    def test_interval_packet_count_matches_rate(self):
        generator = NeperLikeGenerator(
            num_flows=100, aggregate_rate_bps=1.2e9, packet_bytes=1500, seed=1
        )
        events = generator.packets_for_interval(0, 10_000_000)  # 10 ms
        # 1.2 Gbps / 12 kbit per packet = 100k pps -> ~1000 packets in 10 ms.
        assert 800 <= len(events) <= 1200
        assert all(0 <= ts < 10_000_000 for ts, _ in events)
        assert events == sorted(events, key=lambda item: item[0])

    def test_flow_rates_sum_to_aggregate(self):
        generator = NeperLikeGenerator(num_flows=10, aggregate_rate_bps=1e9)
        assert sum(generator.flow_rates().values()) == pytest.approx(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            NeperLikeGenerator(num_flows=0, aggregate_rate_bps=1e9)
        with pytest.raises(ValueError):
            NeperLikeGenerator(num_flows=10, aggregate_rate_bps=0)


class TestShapingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        # A small configuration for CI speed: per-flow packet gaps stay well
        # below the sample duration so every sample sees steady-state work.
        config = ShapingExperimentConfig(
            num_flows=100,
            aggregate_rate_bps=480e6,
            num_samples=3,
            sample_duration_ns=10_000_000,
        )
        return run_shaping_experiment(config)

    def test_all_qdiscs_sampled(self, result):
        assert set(result.samples) == {"fq", "carousel", "eiffel"}
        for samples in result.samples.values():
            assert len(samples) == 3

    def test_eiffel_cheapest(self, result):
        medians = result.median_cores()
        assert medians["eiffel"] < medians["carousel"]
        assert medians["eiffel"] < medians["fq"]

    def test_speedup_factors_reasonable(self, result):
        # Paper: Eiffel outperforms Carousel by ~3x and FQ by ~14x.  The
        # scaled-down CI configuration reproduces the ordering with clear
        # factors; the full ordering (FQ > Carousel > Eiffel) is exercised by
        # the Figure 9 benchmark at the default (larger) configuration.
        assert result.speedup_over("carousel") > 1.5
        assert result.speedup_over("fq") > 1.5

    def test_carousel_softirq_dominates_eiffel(self, result):
        # Figure 10 (right): the difference between Carousel and Eiffel is in
        # timer (softirq) overhead, not in system overhead.
        carousel_softirq = result.softirq_cores_cdf("carousel").median()
        eiffel_softirq = result.softirq_cores_cdf("eiffel").median()
        assert carousel_softirq > eiffel_softirq

    def test_cdf_values_are_positive(self, result):
        for name in result.samples:
            cdf = result.cores_cdf(name)
            assert cdf.quantile(0.9) > 0
