"""Table 1 — the qualitative comparison of schedulers, as data.

The paper positions Eiffel against FQ/pacing, hClock, Carousel, OpenQueue and
PIFO along five axes: per-packet efficiency, hardware/software placement,
unit of scheduling, work conservation, shaping support and programmability.
Encoding the table as data lets the Table 1 benchmark regenerate it and lets
tests assert that the implemented schedulers actually exhibit the claimed
properties (e.g. the Eiffel qdisc supports shaping, the timing wheel does not
support ExtractMin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SchedulerFeatures:
    """One row of Table 1."""

    system: str
    efficiency: str
    placement: str
    unit: str
    work_conserving: bool
    shaping: bool
    programmable: str
    notes: str = ""


FEATURE_MATRIX: List[SchedulerFeatures] = [
    SchedulerFeatures(
        system="FQ/Pacing qdisc",
        efficiency="O(log n)",
        placement="SW",
        unit="Flows",
        work_conserving=False,
        shaping=True,
        programmable="No",
        notes="Only non-work conserving FQ",
    ),
    SchedulerFeatures(
        system="hClock",
        efficiency="O(log n)",
        placement="SW",
        unit="Flows",
        work_conserving=True,
        shaping=True,
        programmable="No",
        notes="Only hierarchical weighted policies",
    ),
    SchedulerFeatures(
        system="Carousel",
        efficiency="O(1)",
        placement="SW",
        unit="Packets",
        work_conserving=False,
        shaping=True,
        programmable="No",
        notes="Only non-work conserving schedules",
    ),
    SchedulerFeatures(
        system="OpenQueue",
        efficiency="O(log n)",
        placement="SW",
        unit="Packets & Flows",
        work_conserving=True,
        shaping=False,
        programmable="On enq/deq",
        notes="Inefficient building blocks",
    ),
    SchedulerFeatures(
        system="PIFO",
        efficiency="O(1)",
        placement="HW",
        unit="Packets",
        work_conserving=True,
        shaping=True,
        programmable="On enq",
        notes="Max. # flows 2048",
    ),
    SchedulerFeatures(
        system="Eiffel",
        efficiency="O(1)",
        placement="SW",
        unit="Packets & Flows",
        work_conserving=True,
        shaping=True,
        programmable="On enq/deq",
        notes="",
    ),
]


def feature_matrix_rows() -> List[List[str]]:
    """Table 1 as a list of string rows (for printing and tests)."""
    rows = []
    for entry in FEATURE_MATRIX:
        rows.append(
            [
                entry.system,
                entry.efficiency,
                entry.placement,
                entry.unit,
                "Yes" if entry.work_conserving else "No",
                "Yes" if entry.shaping else "No",
                entry.programmable,
                entry.notes,
            ]
        )
    return rows


def format_feature_matrix() -> str:
    """Render Table 1 as plain text."""
    from .tables import Table, format_table

    table = Table(
        title="Table 1: Proposed work in the context of the state of the art",
        columns=[
            "System",
            "Efficiency",
            "HW/SW",
            "Unit",
            "Work-Conserving",
            "Shaping",
            "Programmable",
            "Notes",
        ],
    )
    for row in feature_matrix_rows():
        table.add_row(*row)
    return format_table(table)


__all__ = ["FEATURE_MATRIX", "SchedulerFeatures", "feature_matrix_rows", "format_feature_matrix"]
