"""End-to-end hot-path profiling harness for the sharded runtime.

``BENCH_batching.json`` tracks the integer queues in isolation;
``BENCH_sharding.json`` tracks the modelled scaling curve.  This harness
tracks what neither does: the *interpreter-level* cost of the whole
enqueue → stamp → extract_due → drain pipeline, so every future PR sees the
wall-clock trajectory of the end-to-end hot path next to the modelled one.

Two measurements are recorded per shard count (1 / 4 / 8 shards, uniform
flow hash, NIC RX-burst ingress exactly as in the sharding benchmark):

* **wall-clock Mops/s** of the single-threaded simulation (best of several
  rounds — shared machines throttle, and the best round is the code's speed
  rather than the scheduler's mood), plus
* **modelled cycles/packet** from the CPU cost model, which is fully
  deterministic for the fixed workload and therefore doubles as the CI
  guard: an accidental change to the cost model's answers (the thing a
  hot-path optimisation must *not* do) fails the smoke test, while the
  wall-clock numbers are recorded without assertion.

A cProfile block (top functions by cumulative time over the 4-shard run) is
written into the artifact so the next optimisation pass starts from data,
not guesses — "where do the interpreter's cycles actually go?" is answered
by ``BENCH_hotpath.json`` directly.

Run standalone (``python benchmarks/bench_hotpath.py``) to regenerate
``BENCH_hotpath.json``; the pytest entry point runs the smoke-sized guard.
"""

import cProfile
import json
import pstats
import time
from pathlib import Path

from conftest import report

from repro.core.model.packet import Packet
from repro.cpu import CpuMeter
from repro.runtime import ShardedRuntime

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

SHARD_COUNTS = [1, 4, 8]
NUM_FLOWS = 256
RATE_BPS = 10e9
PACKET_BYTES = 1500
QUANTUM_NS = 10_000
BATCH_PER_QUANTUM = 64
INGRESS_BURST = 128
INGRESS_BURST_QUANTA = 8

FULL_PACKETS = 20_000
SMOKE_PACKETS = 4_000
WALL_CLOCK_ROUNDS = 3
PROFILE_TOP_N = 15
PROFILE_SHARDS = 4

METER = CpuMeter()  # 3 GHz modelled cores


def _flow_sequence(num_packets: int) -> list:
    """Deterministic uniform-ish flow ids (multiplicative hash, no RNG)."""
    return [(index * 2654435761) % NUM_FLOWS for index in range(num_packets)]


def _drive_once(num_shards: int, flow_ids: list) -> ShardedRuntime:
    """Build a runtime, push the RX-burst workload through it, run to drain."""
    runtime = ShardedRuntime(
        num_shards,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=BATCH_PER_QUANTUM,
        record_transmits=False,
    )
    simulator = runtime.simulator
    for index in range(0, len(flow_ids), INGRESS_BURST):
        chunk = flow_ids[index : index + INGRESS_BURST]
        when_ns = (index // INGRESS_BURST) * INGRESS_BURST_QUANTA * QUANTUM_NS

        def offer(chunk=chunk) -> None:
            runtime.submit_batch(
                [Packet(flow_id=flow_id, size_bytes=PACKET_BYTES) for flow_id in chunk]
            )

        simulator.schedule_at(when_ns, offer)
    runtime.run()
    return runtime


def _measure_shards(num_shards: int, flow_ids: list, rounds: int) -> dict:
    """Wall-clock (best of ``rounds``) + modelled telemetry for one config."""
    best_elapsed = float("inf")
    cycles_per_packet = None
    telemetry = None
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        runtime = _drive_once(num_shards, flow_ids)
        elapsed = time.perf_counter() - start
        telemetry = runtime.telemetry()
        assert telemetry.transmitted == len(flow_ids)
        round_cycles = telemetry.total_cycles / telemetry.transmitted
        if cycles_per_packet is None:
            cycles_per_packet = round_cycles
        else:
            # The cost model's answer must not depend on the round.
            assert round_cycles == cycles_per_packet
        best_elapsed = min(best_elapsed, elapsed)
    packets = len(flow_ids)
    return {
        "num_shards": num_shards,
        "packets": packets,
        "wall_ops_per_sec": packets / max(best_elapsed, 1e-9),
        "wall_elapsed_best_sec": best_elapsed,
        "cycles_per_packet": cycles_per_packet,
        "bottleneck_cycles_per_packet": telemetry.max_shard_cycles / packets,
        "modelled_aggregate_ops_per_sec": (
            packets * METER.cycles_per_second / telemetry.max_shard_cycles
        ),
    }


def _profile_pipeline(num_shards: int, flow_ids: list, top_n: int) -> list:
    """cProfile one end-to-end run; return the top functions by cumtime."""
    profiler = cProfile.Profile()
    profiler.enable()
    _drive_once(num_shards, flow_ids)
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, func), (calls, _nc, tottime, cumtime, _callers) in stats.stats.items():
        rows.append(
            {
                "function": func,
                "file": "/".join(Path(filename).parts[-3:]) if filename != "~" else "~",
                "line": line,
                "calls": calls,
                "tottime_sec": round(tottime, 6),
                "cumtime_sec": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda row: row["cumtime_sec"], reverse=True)
    return rows[:top_n]


def run_hotpath_bench(
    num_packets: int = FULL_PACKETS,
    rounds: int = WALL_CLOCK_ROUNDS,
    profile: bool = True,
) -> dict:
    """Measure every shard count; returns the artifact payload."""
    flow_ids = _flow_sequence(num_packets)
    shards = {
        str(num_shards): _measure_shards(num_shards, flow_ids, rounds)
        for num_shards in SHARD_COUNTS
    }
    # The smoke block is what CI asserts against: the same deterministic
    # workload at smoke size, so the guard is exact and machine-independent.
    # A smoke-sized run (the CI case) reuses its own measurements instead of
    # re-simulating the byte-identical workload.
    if num_packets == SMOKE_PACKETS:
        smoke = {
            key: run["cycles_per_packet"] for key, run in shards.items()
        }
    else:
        smoke_flow_ids = _flow_sequence(SMOKE_PACKETS)
        smoke = {
            str(num_shards): _measure_shards(num_shards, smoke_flow_ids, 1)[
                "cycles_per_packet"
            ]
            for num_shards in SHARD_COUNTS
        }
    payload = {
        "benchmark": "hotpath_profile",
        "description": (
            "End-to-end sharded pipeline (ingress -> stamp -> extract_due -> "
            "drain): wall-clock Mops/s (best-of-rounds, single-threaded "
            "harness) next to deterministic modelled cycles/packet, plus a "
            "cProfile top-N of where the interpreter actually spends its "
            "time.  CI asserts the smoke-size modelled cycles only; wall "
            "clock is recorded, never asserted."
        ),
        "workload": {
            "num_packets": num_packets,
            "smoke_packets": SMOKE_PACKETS,
            "num_flows": NUM_FLOWS,
            "flow_rate_bps": RATE_BPS,
            "packet_bytes": PACKET_BYTES,
            "quantum_ns": QUANTUM_NS,
            "batch_per_quantum": BATCH_PER_QUANTUM,
            "ingress_burst": INGRESS_BURST,
            "ingress_burst_quanta": INGRESS_BURST_QUANTA,
            "wall_clock_rounds": rounds,
            "modelled_clock_hz": METER.cycles_per_second,
        },
        "shard_counts": SHARD_COUNTS,
        "shards": shards,
        "smoke_cycles_per_packet": smoke,
    }
    if profile:
        payload["profile"] = {
            "num_shards": PROFILE_SHARDS,
            "top_n": PROFILE_TOP_N,
            "sorted_by": "cumtime",
            "functions": _profile_pipeline(PROFILE_SHARDS, flow_ids, PROFILE_TOP_N),
        }
    return payload


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_hotpath.json`` (the interpreter-trajectory artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_results(results: dict) -> str:
    lines = [
        f"{'shards':<8}{'wall Mops/s':<14}{'cycles/pkt':<12}{'bottleneck c/p':<16}"
        f"{'modelled Mops/s':<16}"
    ]
    for num_shards in results["shard_counts"]:
        run = results["shards"][str(num_shards)]
        lines.append(
            f"{num_shards:<8}{run['wall_ops_per_sec'] / 1e6:<14.3f}"
            f"{run['cycles_per_packet']:<12.1f}"
            f"{run['bottleneck_cycles_per_packet']:<16.1f}"
            f"{run['modelled_aggregate_ops_per_sec'] / 1e6:<16.2f}"
        )
    profile = results.get("profile")
    if profile:
        lines.append("")
        lines.append(f"cProfile top {profile['top_n']} (cumtime, {profile['num_shards']} shards):")
        for row in profile["functions"][:10]:
            lines.append(
                f"  {row['cumtime_sec']:8.4f}s  {row['calls']:>9}x  "
                f"{row['function']} ({row['file']}:{row['line']})"
            )
    return "\n".join(lines)


# -- pytest entry points ------------------------------------------------------


def test_hotpath_smoke_guard(benchmark):
    """Modelled cycles/packet must match the committed artifact exactly.

    The wall-clock column is reported (so CI logs show the trajectory) but
    never asserted — shared runners are too noisy for a non-flaky wall-clock
    gate.  The modelled number is deterministic, so any drift means a code
    change altered the cost model's answers, which a hot-path optimisation
    must never do.
    """
    committed = json.loads(ARTIFACT_PATH.read_text())
    results = benchmark.pedantic(
        run_hotpath_bench,
        kwargs={"num_packets": SMOKE_PACKETS, "rounds": 1, "profile": False},
        rounds=1,
        iterations=1,
    )
    report("Hot-path smoke — wall clock vs modelled", _format_results(results))
    benchmark.extra_info["wall_ops_per_sec"] = {
        shards: run["wall_ops_per_sec"] for shards, run in results["shards"].items()
    }
    for num_shards in SHARD_COUNTS:
        observed = results["shards"][str(num_shards)]["cycles_per_packet"]
        expected = committed["smoke_cycles_per_packet"][str(num_shards)]
        assert abs(observed - expected) < 1e-9, (
            f"modelled cycles/packet drifted at {num_shards} shards: "
            f"{expected} (committed) -> {observed} (this tree); hot-path "
            "optimisations must not change the cost model's answers — "
            "regenerate BENCH_hotpath.json only for deliberate model changes"
        )
    # The committed artifact must stay regenerable and carry the profile
    # block future optimisation passes start from.
    assert committed["profile"]["functions"], "committed artifact lost its profile block"


if __name__ == "__main__":
    bench = run_hotpath_bench()
    artifact = write_artifact(bench)
    print(_format_results(bench))
    print(f"\nwrote {artifact}")
