"""Integration tests for the sharded runtime driver.

Covers the ShardedRuntime event loop (wake-up, quantum ticks, deadline
sleeps), telemetry aggregation, lazy migration, and the 1-shard equivalence
with a bare single-core composition of the same primitives.
"""

import pytest

from repro.core.model.packet import Packet
from repro.core.model.transactions import RateLimit, ShapingTransaction
from repro.core.queues import BucketSpec, CircularFFSQueue, QueueStats
from repro.runtime import FlowSharder, ShardRebalancer, ShardedRuntime

RATE_BPS = 1e9
QUANTUM_NS = 10_000


def _packets(flow_ids, size_bytes=1500):
    return [Packet(flow_id=flow_id, size_bytes=size_bytes) for flow_id in flow_ids]


def _flow_sequences(transmit_log):
    sequences = {}
    for _now, packet in transmit_log:
        sequences.setdefault(packet.flow_id, []).append(packet.packet_id)
    return sequences


class TestShardedRuntime:
    def test_transmits_everything_across_shards(self):
        runtime = ShardedRuntime(
            4, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS
        )
        packets = _packets([flow % 32 for flow in range(512)])
        assert runtime.submit_batch(packets) == 512
        runtime.run()
        assert runtime.transmitted == 512
        assert runtime.pending == 0
        used = [worker.stats.transmitted for worker in runtime.workers]
        assert all(count > 0 for count in used), f"idle shard: {used}"

    def test_per_flow_fifo_preserved(self):
        runtime = ShardedRuntime(4, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS)
        runtime.submit_batch(_packets([flow % 16 for flow in range(400)]))
        runtime.run()
        for flow_id, sequence in _flow_sequences(runtime.transmit_log).items():
            assert sequence == sorted(sequence), f"flow {flow_id} reordered"

    def test_departures_respect_pacing(self):
        runtime = ShardedRuntime(2, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS)
        runtime.submit_batch(_packets([1] * 10))
        runtime.run()
        times = [now for now, _packet in runtime.transmit_log]
        # 1500 B at 1 Gbps = 12 us spacing; quantum quantisation may delay a
        # release but never produce more than one packet per pacing slot.
        spacing_ns = int(1500 * 8 / RATE_BPS * 1e9)
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= spacing_ns - QUANTUM_NS

    def test_unpaced_flows_release_immediately(self):
        runtime = ShardedRuntime(2, quantum_ns=QUANTUM_NS)
        runtime.submit_batch(_packets([1, 2, 3, 4]))
        runtime.run()
        assert runtime.transmitted == 4
        assert all(now == 0 for now, _packet in runtime.transmit_log)

    def test_wake_on_submit_after_idle(self):
        runtime = ShardedRuntime(2, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS)
        runtime.submit(Packet(flow_id=1))
        runtime.run()
        first_round = runtime.transmitted
        # The runtime is fully idle; a later submission must restart ticking.
        runtime.submit(Packet(flow_id=1))
        runtime.run()
        assert runtime.transmitted == first_round + 1

    def test_deadline_sleep_skips_idle_ticks(self):
        # One packet paced far into the future: the shard should sleep to the
        # deadline instead of ticking every quantum.
        slow_rate = 1e6  # 1500 B at 1 Mbps = 12 ms per packet
        runtime = ShardedRuntime(1, default_rate_bps=slow_rate, quantum_ns=QUANTUM_NS)
        runtime.submit_batch(_packets([1, 1]))
        runtime.run()
        assert runtime.transmitted == 2
        worker = runtime.workers[0]
        deadline_span_ticks = 12_000_000 // QUANTUM_NS
        assert worker.stats.ticks < deadline_span_ticks / 10

    def test_mailbox_capacity_drops_are_counted(self):
        runtime = ShardedRuntime(1, quantum_ns=QUANTUM_NS, mailbox_capacity=8)
        accepted = runtime.submit_batch(_packets([1] * 20))
        assert accepted == 8
        assert runtime.ingress_drops == 12
        runtime.run()
        assert runtime.transmitted == 8

    def test_telemetry_aggregates_shards(self):
        runtime = ShardedRuntime(4, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS)
        runtime.submit_batch(_packets([flow % 24 for flow in range(300)]))
        runtime.run()
        telemetry = runtime.telemetry()
        assert telemetry.transmitted == 300
        assert sum(shard.transmitted for shard in telemetry.shards) == 300
        expected = QueueStats.aggregate(
            worker.queue.stats for worker in runtime.workers
        )
        assert telemetry.queue_stats.as_dict() == expected.as_dict()
        assert telemetry.total_cycles == pytest.approx(
            sum(worker.cost.total_cycles for worker in runtime.workers)
        )
        assert telemetry.max_shard_cycles == max(
            worker.cost.total_cycles for worker in runtime.workers
        )
        assert telemetry.imbalance >= 1.0
        payload = telemetry.as_dict()
        assert payload["transmitted"] == 300
        assert len(payload["shards"]) == 4

    def test_migration_waits_for_flow_to_drain(self):
        sharder = FlowSharder(2)
        runtime = ShardedRuntime(
            2,
            sharder=sharder,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
        )
        home = sharder.shard_for(5)
        other = 1 - home
        runtime.submit_batch(_packets([5] * 4))
        # Re-pin mid-flight: packets already inside `home` must finish there.
        sharder.pin(5, other)
        runtime.submit_batch(_packets([5] * 2))
        runtime.run()
        assert runtime.workers[home].stats.transmitted == 6
        assert runtime.workers[other].stats.transmitted == 0
        # Once drained, the pin takes effect for new packets.
        runtime.submit_batch(_packets([5] * 2))
        runtime.run()
        assert runtime.workers[other].stats.transmitted == 2
        assert runtime.migrations_applied == 1
        sequences = _flow_sequences(runtime.transmit_log)
        assert sequences[5] == sorted(sequences[5])

    def test_rebalancer_runs_and_preserves_fifo(self):
        runtime = ShardedRuntime(
            4,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            rebalance_interval_ns=20 * QUANTUM_NS,
        )
        # Heavy skew: 70% of traffic on two elephant flows.
        flows = ([1, 2] * 7 + [3, 4, 5, 6, 7, 8])[:20]
        for _round in range(25):
            runtime.submit_batch(_packets(flows))
            runtime.run(until_ns=runtime.simulator.now_ns + 4 * QUANTUM_NS)
        runtime.run()
        assert runtime.transmitted == 25 * len(flows)
        assert runtime.telemetry().rebalance_rounds > 0
        for flow_id, sequence in _flow_sequences(runtime.transmit_log).items():
            assert sequence == sorted(sequence), f"flow {flow_id} reordered"

    def test_stop_cancels_outstanding_timers(self):
        runtime = ShardedRuntime(
            2,
            default_rate_bps=1e6,
            quantum_ns=QUANTUM_NS,
            rebalance_interval_ns=QUANTUM_NS,
        )
        runtime.submit_batch(_packets([1, 2, 3, 4]))
        runtime.run(max_events=1)
        assert runtime.simulator.pending_events > 0
        runtime.stop()
        assert runtime.simulator.pending_events == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedRuntime(0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, quantum_ns=0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, sharder=FlowSharder(3))
        with pytest.raises(ValueError):
            ShardedRuntime(2, rebalancer=ShardRebalancer(FlowSharder(2)))


class TestSingleShardEquivalence:
    """A 1-shard runtime must match the bare single-core scheduler.

    The reference below composes the same primitives the pre-sharding stack
    uses — one cFFS timestamp queue plus per-flow shaping transactions,
    drained one batch per quantum — with none of the runtime machinery
    (mailboxes, sharder, simulator events).  Identical outputs show the
    sharding layer adds no behavioural change at N=1.
    """

    HORIZON_NS = 2_000_000_000
    NUM_BUCKETS = 20_000
    BATCH = 64

    def _reference_schedule(self, flow_ids, rate_bps, quantum_ns):
        granularity = max(1, self.HORIZON_NS // self.NUM_BUCKETS)
        queue = CircularFFSQueue(
            BucketSpec(num_buckets=self.NUM_BUCKETS, granularity=granularity)
        )
        shapers = {}
        pairs = []
        for flow_id in flow_ids:
            packet = Packet(flow_id=flow_id, size_bytes=1500)
            shaper = shapers.get(flow_id)
            if shaper is None:
                shaper = ShapingTransaction(f"ref-{flow_id}", RateLimit(rate_bps))
                shapers[flow_id] = shaper
            pairs.append((shaper.stamp(packet, 0), packet))
        queue.enqueue_batch(pairs)
        schedule = []
        now = 0
        while len(queue):
            for _send_at, packet in queue.extract_due(now, limit=self.BATCH):
                schedule.append((now, packet.flow_id))
            if not len(queue):
                break
            next_ns = now + quantum_ns
            soonest = max(queue.peek_min()[0], now)
            now = soonest if soonest > next_ns else next_ns
        return schedule

    @pytest.mark.parametrize("steal_enabled", [False, True])
    def test_one_shard_matches_single_core_reference(self, steal_enabled):
        # With one shard there is no sibling to steal from, so the steal
        # machinery must be a perfect no-op: same schedule to the tick.
        flow_ids = [flow % 7 for flow in range(200)]
        runtime = ShardedRuntime(
            1,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            batch_per_quantum=self.BATCH,
            horizon_ns=self.HORIZON_NS,
            num_buckets=self.NUM_BUCKETS,
            steal_enabled=steal_enabled,
            steal_min_backlog=1,
        )
        runtime.submit_batch(_packets(flow_ids))
        runtime.run()
        observed = [(now, packet.flow_id) for now, packet in runtime.transmit_log]
        expected = self._reference_schedule(flow_ids, RATE_BPS, QUANTUM_NS)
        assert observed == expected

    def test_equivalence_with_unpaced_flows(self):
        flow_ids = [flow % 3 for flow in range(50)]
        runtime = ShardedRuntime(
            1, quantum_ns=QUANTUM_NS, batch_per_quantum=self.BATCH
        )
        runtime.submit_batch(_packets(flow_ids))
        runtime.run()
        observed = [(now, packet.flow_id) for now, packet in runtime.transmit_log]
        # Unpaced packets all stamp at t=0 and drain in BATCH-sized rounds,
        # one round per quantum.
        assert [flow for _now, flow in observed] == flow_ids
        assert observed[: self.BATCH] == [(0, flow) for flow in flow_ids[: self.BATCH]]


class TestReentrantSubmit:
    def test_on_transmit_feedback_does_not_fork_tick_chains(self):
        runtime = ShardedRuntime(1, quantum_ns=QUANTUM_NS)
        fed = [0]

        def feed_back(packet, now_ns):
            if fed[0] < 50:
                fed[0] += 1
                runtime.submit(Packet(flow_id=1, size_bytes=1500))

        runtime.on_transmit = feed_back
        runtime.submit(Packet(flow_id=1, size_bytes=1500))
        runtime.run()
        assert runtime.transmitted == 51
        # One tick chain: ticks stay linear in releases (a forked chain
        # roughly doubles per feedback round).
        assert runtime.workers[0].stats.ticks <= 60
        sequences = _flow_sequences(runtime.transmit_log)
        assert sequences[1] == sorted(sequences[1])


class TestMigrationPacingHandoff:
    def test_pacing_state_survives_migration(self):
        # A paced flow migrated between shards must keep its 12 us spacing:
        # the shaping transaction moves with the flow instead of being
        # recreated (which would regrant the burst).
        sharder = FlowSharder(2)
        runtime = ShardedRuntime(
            2, sharder=sharder, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS
        )
        home = sharder.shard_for(5)
        runtime.submit_batch(_packets([5] * 4))
        runtime.run()
        sharder.pin(5, 1 - home)
        runtime.submit_batch(_packets([5] * 4))
        runtime.run()
        assert runtime.workers[1 - home].stats.transmitted == 4
        times = [now for now, _packet in runtime.transmit_log]
        spacing_ns = int(1500 * 8 / RATE_BPS * 1e9)
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= spacing_ns - QUANTUM_NS, times

    def test_dropped_packet_does_not_count_migration(self):
        sharder = FlowSharder(2)
        runtime = ShardedRuntime(
            2,
            sharder=sharder,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            mailbox_capacity=2,
        )
        home = sharder.shard_for(5)
        other = 1 - home
        runtime.submit(Packet(flow_id=5, size_bytes=1500))
        runtime.run()  # establish the home, then drain
        # Fill the destination mailbox with another flow, then try to migrate.
        filler = 7 if sharder.shard_for(7) == other else 9
        assert sharder.shard_for(filler) == other or sharder.pin(filler, other) is None
        runtime.workers[other].mailbox.push_batch(
            _packets([filler, filler])
        )
        sharder.pin(5, other)
        assert not runtime.submit(Packet(flow_id=5, size_bytes=1500))
        assert runtime.ingress_drops == 1
        assert runtime.migrations_applied == 0
        # Flow 5's pacing state is still owned by the original shard.
        assert 5 in runtime.workers[home].pacing


class TestFlowStateGc:
    def test_idle_flow_state_is_reclaimed(self):
        runtime = ShardedRuntime(
            2, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS, gc_interval_packets=16
        )
        # Two generations of ephemeral flows: the second generation's
        # transmissions sweep away the (long-expired) first generation, as
        # ongoing traffic does for dead flows in a long-running runtime.
        runtime.submit_batch(_packets(range(100)))
        runtime.simulator.schedule_at(
            1_000_000, lambda: runtime.submit_batch(_packets(range(100, 200)))
        )
        runtime.run()
        assert runtime.transmitted == 200
        assert not any(flow in runtime.flows for flow in range(100))
        live_shapers = sum(len(worker.pacing) for worker in runtime.workers)
        assert live_shapers < 150

    def test_gc_keeps_flows_with_future_pacing_state(self):
        slow_rate = 1e6  # 12 ms/packet: next_free_ns stays in the future
        runtime = ShardedRuntime(
            1, default_rate_bps=slow_rate, quantum_ns=QUANTUM_NS, gc_interval_packets=1
        )
        runtime.submit_batch(_packets([1, 1, 1]))
        runtime.run(until_ns=15_000_000)  # two released, one still paced
        assert runtime.transmitted == 2
        # Flow 1 still has a queued packet and live pacing state: not GC'd.
        assert 1 in runtime.flows
        assert 1 in runtime.workers[0].pacing
        runtime.run()
        assert runtime.transmitted == 3

    def test_gc_can_be_disabled(self):
        runtime = ShardedRuntime(2, quantum_ns=QUANTUM_NS, gc_interval_packets=None)
        runtime.submit_batch(_packets(range(50)))
        runtime.run()
        assert len(runtime.flows) == 50

    def test_gc_validation(self):
        with pytest.raises(ValueError):
            ShardedRuntime(2, gc_interval_packets=0)
