"""Hierarchical FFS-based queue (Figure 3 / the PIQ structure).

When the number of buckets exceeds the width of one machine word, the
occupancy bitmap becomes a tree: each bit of a node summarises the occupancy
of one child node, and the children of leaf nodes are the buckets themselves.
Finding the minimum non-empty bucket walks the tree root-to-leaf applying FFS
at each level — O(log_w N) word operations, which is a small constant once
the queue is configured (six FFS operations cover a billion buckets with
64-bit words).

The tree is stored as a flat list of levels; level 0 is the root word(s) and
the last level has one bit per bucket.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Optional

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    PriorityOutOfRangeError,
    validate_priority,
)
from .ffs import DEFAULT_WORD_WIDTH, clear_bit, find_first_set, set_bit


class FFSBitmapTree:
    """A hierarchical occupancy bitmap over ``num_buckets`` slots.

    The structure only stores per-level word arrays; it knows nothing about
    the elements themselves, which keeps it reusable by both the hierarchical
    queue and the circular queue (which swaps two trees).
    """

    def __init__(self, num_buckets: int, word_width: int = DEFAULT_WORD_WIDTH) -> None:
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if word_width < 2:
            raise ValueError("word_width must be at least 2")
        self.num_buckets = num_buckets
        self.word_width = word_width
        self.levels: list[list[int]] = []
        size = num_buckets
        # Build levels bottom-up: the last entry of ``levels`` is the leaf level.
        level_sizes = []
        while True:
            words = (size + word_width - 1) // word_width
            level_sizes.append(words)
            if words == 1:
                break
            size = words
        for words in reversed(level_sizes):
            self.levels.append([0] * words)
        self.depth = len(self.levels)
        self._count = 0

    def set(self, bucket: int) -> int:
        """Mark ``bucket`` occupied; returns the number of words touched."""
        self._check(bucket)
        touched = 0
        index = bucket
        for level in reversed(self.levels):
            word_index, bit = divmod(index, self.word_width)
            touched += 1
            if (level[word_index] >> bit) & 1:
                break
            level[word_index] = set_bit(level[word_index], bit)
            index = word_index
        return touched

    def clear(self, bucket: int) -> int:
        """Mark ``bucket`` empty, propagating up; returns words touched."""
        self._check(bucket)
        touched = 0
        index = bucket
        for level in reversed(self.levels):
            word_index, bit = divmod(index, self.word_width)
            touched += 1
            level[word_index] = clear_bit(level[word_index], bit)
            if level[word_index] != 0:
                break
            index = word_index
        return touched

    def first_set(self) -> tuple[int, int]:
        """Return ``(bucket, words_scanned)`` for the minimum occupied bucket.

        Raises:
            EmptyQueueError: when no bucket is occupied.
        """
        if self.levels[0][0] == 0:
            raise EmptyQueueError("bitmap tree is empty")
        index = 0
        scanned = 0
        for level in self.levels:
            word = level[index]
            scanned += 1
            index = index * self.word_width + find_first_set(word)
        return index, scanned

    def test(self, bucket: int) -> bool:
        """True when ``bucket`` is marked occupied."""
        self._check(bucket)
        word_index, bit = divmod(bucket, self.word_width)
        return bool((self.levels[-1][word_index] >> bit) & 1)

    @property
    def any(self) -> bool:
        """True when at least one bucket is occupied."""
        return self.levels[0][0] != 0

    def clear_all(self) -> None:
        """Reset every level to all-zero."""
        for level in self.levels:
            for i in range(len(level)):
                level[i] = 0

    def _check(self, bucket: int) -> None:
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(
                f"bucket {bucket} outside bitmap tree of {self.num_buckets} buckets"
            )


class HierarchicalFFSQueue(IntegerPriorityQueue):
    """Bucketed integer priority queue indexed by an FFS bitmap tree.

    Operates over a *fixed* priority range.  The circular variant
    (:class:`repro.core.queues.circular_ffs.CircularFFSQueue`) reuses this
    structure for a moving range.
    """

    def __init__(self, spec: BucketSpec, word_width: int = DEFAULT_WORD_WIDTH) -> None:
        super().__init__(spec)
        self.word_width = word_width
        self._tree = FFSBitmapTree(spec.num_buckets, word_width)
        self._buckets: list[Deque[tuple[int, Any]]] = [
            deque() for _ in range(spec.num_buckets)
        ]

    @property
    def depth(self) -> int:
        """Number of bitmap levels (the constant in O(log_w N))."""
        return self._tree.depth

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            raise PriorityOutOfRangeError(
                f"priority {priority} outside fixed range of HierarchicalFFSQueue"
            )
        bucket = self.spec.bucket_for(priority)
        self.stats.enqueues += 1
        self.stats.bucket_lookups += 1
        was_empty = not self._buckets[bucket]
        self._buckets[bucket].append((priority, item))
        if was_empty:
            self.stats.word_scans += self._tree.set(bucket)
        self._size += 1

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty HierarchicalFFSQueue")
        bucket, scanned = self._tree.first_set()
        self.stats.word_scans += scanned
        entry = self._buckets[bucket].popleft()
        if not self._buckets[bucket]:
            self.stats.word_scans += self._tree.clear(bucket)
        self.stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty HierarchicalFFSQueue")
        bucket, scanned = self._tree.first_set()
        self.stats.word_scans += scanned
        return self._buckets[bucket][0]

    # -- batch operations -------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one bucket lookup and tree update per bucket."""
        grouped: dict[int, list[tuple[int, Any]]] = {}
        count = 0
        for priority, item in pairs:
            priority = validate_priority(priority)
            if not self.spec.contains(priority):
                raise PriorityOutOfRangeError(
                    f"priority {priority} outside fixed range of HierarchicalFFSQueue"
                )
            grouped.setdefault(self.spec.bucket_for(priority), []).append(
                (priority, item)
            )
            count += 1
        self.stats.enqueues += count
        self.stats.bucket_lookups += len(grouped)
        for bucket, entries in grouped.items():
            was_empty = not self._buckets[bucket]
            self._buckets[bucket].extend(entries)
            if was_empty:
                self.stats.word_scans += self._tree.set(bucket)
        self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one root-to-leaf walk per bucket visited."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        while len(batch) < n and self._size:
            bucket, scanned = self._tree.first_set()
            self.stats.word_scans += scanned
            entries = self._buckets[bucket]
            take = min(n - len(batch), len(entries))
            for _ in range(take):
                batch.append(entries.popleft())
            if not entries:
                self.stats.word_scans += self._tree.clear(bucket)
            self.stats.dequeues += take
            self._size -= take
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        released: list[tuple[int, Any]] = []
        while self._size and (limit is None or len(released) < limit):
            bucket, scanned = self._tree.first_set()
            self.stats.word_scans += scanned
            entries = self._buckets[bucket]
            while entries and entries[0][0] <= now:
                if limit is not None and len(released) >= limit:
                    break
                released.append(entries.popleft())
                self.stats.dequeues += 1
                self._size -= 1
            if not entries:
                self.stats.word_scans += self._tree.clear(bucket)
                continue
            break
        return released

    def remove(self, priority: int, item: Any) -> bool:
        """Remove a specific ``(priority, item)`` pair in O(bucket length).

        Bucketed queues support cheap removal, which pFabric and hClock use
        heavily when a flow's rank changes (Section 2).  Returns True when
        the element was found and removed.
        """
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            return False
        bucket = self.spec.bucket_for(priority)
        queue = self._buckets[bucket]
        self.stats.bucket_lookups += 1
        for index, entry in enumerate(queue):
            if entry[0] == priority and entry[1] is item:
                del queue[index]
                self._size -= 1
                if not queue:
                    self.stats.word_scans += self._tree.clear(bucket)
                return True
        return False


__all__ = ["FFSBitmapTree", "HierarchicalFFSQueue"]
