"""Result analysis and formatting: CDFs, percentiles, FCT statistics, tables."""

from .stats import (
    Cdf,
    normalized_fct,
    percentile,
    summarize,
)
from .tables import Series, Table, format_series, format_table
from .feature_matrix import FEATURE_MATRIX, feature_matrix_rows, format_feature_matrix

__all__ = [
    "Cdf",
    "FEATURE_MATRIX",
    "Series",
    "Table",
    "feature_matrix_rows",
    "format_feature_matrix",
    "format_series",
    "format_table",
    "normalized_fct",
    "percentile",
    "summarize",
]
