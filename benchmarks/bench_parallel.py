"""Parallel execution-backend benchmark — measured speedup vs the modelled curve.

Every other benchmark in this harness *models* multi-core execution: shards
tick on one simulated clock and throughput is derived from the bottleneck
shard's cycle account.  The :class:`~repro.runtime.backend.ProcessBackend`
makes that claim falsifiable: the same timed workload runs once on the
simulated backend and once with one OS process per shard, the modelled
results are asserted **identical** (per-flow departure sequences, cycle
accounts, queue counters — the per-shard-replay equivalence), and the real
wall clock of the parallel run is recorded next to the modelled speedup
curve at 1 / 2 / 4 workers.

Interpretation of the two curves:

* ``modelled_speedup`` — bottleneck-cycle ratio, the number every scaling
  figure in this repo is built on (hardware-independent);
* ``measured_speedup`` — wall-clock ratio of the process backend at N
  workers vs 1 worker, on whatever machine ran the benchmark.  It carries
  fork/pickle/ring overhead and is honest about the host: on a single-core
  container there is nothing to win, so the artifact records ``cpu_count``
  and the speedup gate (> 1.5x at 4 workers) is asserted only on machines
  with at least 4 cores and never in CI (shared runners are too noisy).

Results land in ``BENCH_parallel.json`` at the repo root.  Run standalone
(``python benchmarks/bench_parallel.py``) to regenerate it with full
iteration counts; the pytest entry point runs a smoke-sized workload and
asserts correctness only.
"""

import json
import os
import time
from pathlib import Path

from conftest import report

from repro.core.model.packet import Packet
from repro.runtime import ShardedRuntime

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

WORKER_COUNTS = [1, 2, 4]
NUM_FLOWS = 192
RATE_BPS = 10e9
PACKET_BYTES = 1500
QUANTUM_NS = 10_000
BATCH_PER_QUANTUM = 64
INGRESS_BURST = 128  # packets offered per simulated RX pull
INGRESS_BURST_QUANTA = 8  # quanta between RX pulls
SEED = 20_190_226  # NSDI'19

FULL_PACKETS = 24_000
SMOKE_PACKETS = 3_000
FULL_ROUNDS = 3
SMOKE_ROUNDS = 1

#: The local speedup gate: 4 process workers must beat 1 by this factor on a
#: machine that actually has 4 cores (asserted outside CI only).
SPEEDUP_GATE_AT_4 = 1.5


def _bursts(num_packets: int) -> list:
    """The timed workload: NIC-style RX bursts over a fixed flow sequence."""
    import random

    rng = random.Random(SEED)
    flow_ids = [rng.randrange(NUM_FLOWS) for _ in range(num_packets)]
    bursts = []
    for index in range(0, num_packets, INGRESS_BURST):
        when_ns = (index // INGRESS_BURST) * INGRESS_BURST_QUANTA * QUANTUM_NS
        bursts.append((when_ns, flow_ids[index : index + INGRESS_BURST]))
    return bursts


def _run_once(backend: str, num_shards: int, bursts: list) -> tuple:
    """One run; returns (wall_seconds_of_run, observables)."""
    runtime = ShardedRuntime(
        num_shards,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=BATCH_PER_QUANTUM,
        gc_interval_packets=None,  # identical config on every backend
        backend=backend,
    )
    for when_ns, flow_ids in bursts:
        runtime.submit_at(
            when_ns,
            [Packet(flow_id=flow_id, size_bytes=PACKET_BYTES) for flow_id in flow_ids],
        )
    start = time.perf_counter()
    runtime.run()
    elapsed = time.perf_counter() - start

    telemetry = runtime.telemetry()
    flows: dict = {}
    for departure_ns, packet in runtime.transmit_log:
        flows.setdefault(packet.flow_id, []).append((packet.arrival_ns, departure_ns))
    observables = {
        "transmitted": telemetry.transmitted,
        "total_cycles": telemetry.total_cycles,
        "max_shard_cycles": telemetry.max_shard_cycles,
        "queue_stats": telemetry.queue_stats.as_dict(),
        "flows": flows,
    }
    return elapsed, observables


def _measure(backend: str, num_shards: int, bursts: list, rounds: int) -> dict:
    """Best-of-``rounds`` wall clock; the observables of every round agree."""
    best = None
    observables = None
    for _round in range(rounds):
        elapsed, seen = _run_once(backend, num_shards, bursts)
        if observables is None:
            observables = seen
        else:
            assert seen == observables, "non-deterministic modelled results"
        best = elapsed if best is None else min(best, elapsed)
    return {"wall_sec": best, **observables}


def run_parallel_sweep(num_packets: int = FULL_PACKETS, rounds: int = FULL_ROUNDS) -> dict:
    """Sweep worker counts; assert process == simulated at every point."""
    bursts = _bursts(num_packets)
    workers: dict = {}
    for count in WORKER_COUNTS:
        simulated = _measure("simulated", count, bursts, rounds)
        process = _measure("process", count, bursts, rounds)
        # The tentpole equivalence: the parallel run reproduces the modelled
        # world exactly — same departures per flow, same cycle accounts.
        for key in ("transmitted", "total_cycles", "max_shard_cycles", "queue_stats", "flows"):
            assert process[key] == simulated[key], f"{key} diverged at {count} workers"
        assert simulated["transmitted"] == num_packets
        workers[str(count)] = {
            "num_workers": count,
            "transmitted": num_packets,
            "max_shard_cycles": simulated["max_shard_cycles"],
            "total_cycles": simulated["total_cycles"],
            "simulated_wall_sec": simulated["wall_sec"],
            "process_wall_sec": process["wall_sec"],
        }
    base = workers["1"]
    for row in workers.values():
        row["modelled_speedup"] = base["max_shard_cycles"] / row["max_shard_cycles"]
        row["measured_speedup"] = base["process_wall_sec"] / row["process_wall_sec"]
    return {
        "benchmark": "parallel_backend",
        "description": (
            "Process-backend wall-clock speedup at 1/2/4 workers next to the "
            "modelled bottleneck-cycle curve; modelled results asserted "
            "bit-identical to the simulated backend at every worker count."
        ),
        "workload": {
            "num_packets": num_packets,
            "num_flows": NUM_FLOWS,
            "flow_rate_bps": RATE_BPS,
            "packet_bytes": PACKET_BYTES,
            "quantum_ns": QUANTUM_NS,
            "batch_per_quantum": BATCH_PER_QUANTUM,
            "ingress_burst": INGRESS_BURST,
            "ingress_burst_quanta": INGRESS_BURST_QUANTA,
            "rounds": rounds,
            "seed": SEED,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "ci": bool(os.environ.get("CI")),
        },
        "worker_counts": WORKER_COUNTS,
        "workers": workers,
    }


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_parallel.json`` (the measured-parallelism artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_sweep(results: dict) -> str:
    lines = [
        f"{'workers':<9}{'modelled x':<12}{'measured x':<12}"
        f"{'process wall s':<16}{'simulated wall s':<16}"
    ]
    for count in results["worker_counts"]:
        row = results["workers"][str(count)]
        lines.append(
            f"{count:<9}{row['modelled_speedup']:<12.2f}{row['measured_speedup']:<12.2f}"
            f"{row['process_wall_sec']:<16.3f}{row['simulated_wall_sec']:<16.3f}"
        )
    host = results["host"]
    lines.append(f"host: cpu_count={host['cpu_count']} ci={host['ci']}")
    return "\n".join(lines)


def _assert_speedup_gate(results: dict) -> None:
    """The local-only wall-clock gate (meaningless on < 4 cores or in CI)."""
    host = results["host"]
    if host["ci"] or (host["cpu_count"] or 1) < 4:
        return
    measured = results["workers"]["4"]["measured_speedup"]
    assert measured > SPEEDUP_GATE_AT_4, (
        f"process backend reached only {measured:.2f}x at 4 workers on a "
        f"{host['cpu_count']}-core machine (gate: {SPEEDUP_GATE_AT_4}x)"
    )


# -- pytest entry point -------------------------------------------------------


def test_parallel_backend_speedup(benchmark, tmp_path):
    results = benchmark.pedantic(
        run_parallel_sweep,
        kwargs={"num_packets": SMOKE_PACKETS, "rounds": SMOKE_ROUNDS},
        rounds=1,
        iterations=1,
    )
    # The committed BENCH_parallel.json holds the full-size run (with this
    # machine's wall-clock numbers); the test writes to a scratch path.
    path = write_artifact(results, tmp_path / "BENCH_parallel.json")
    report("Parallel backend — measured vs modelled speedup", _format_sweep(results))
    benchmark.extra_info["artifact"] = str(path)
    benchmark.extra_info["measured_speedup_at_4"] = results["workers"]["4"][
        "measured_speedup"
    ]
    # Correctness is the CI gate (run_parallel_sweep already asserted the
    # process == simulated equivalence at every worker count); the modelled
    # curve must scale, the measured curve is recorded-only except on a
    # local >= 4-core machine.
    modelled = [
        results["workers"][str(count)]["modelled_speedup"]
        for count in WORKER_COUNTS
    ]
    assert modelled == sorted(modelled), f"modelled curve not monotone: {modelled}"
    assert modelled[-1] > 2.0, f"modelled speedup at 4 workers: {modelled[-1]:.2f}"
    _assert_speedup_gate(results)


if __name__ == "__main__":
    sweep = run_parallel_sweep()
    artifact = write_artifact(sweep)
    print(_format_sweep(sweep))
    _assert_speedup_gate(sweep)
    print(f"\nwrote {artifact}")
