"""Fault injection and recovery: every fault kind, injected and survived.

Each test arms one seam of the deterministic fault plane
(:mod:`repro.runtime.faults`) and asserts the recovery contract: the run
completes, every packet is either delivered or attributed to a counted
loss, recovered flows keep per-flow FIFO, and nothing is stranded after
drain.  The process-backend half exercises the supervised child restart
(death, hang, and shared-memory frame corruption) end-to-end.
"""

import multiprocessing
import time

import pytest

from repro.core.model.packet import Packet
from repro.runtime import FaultEvent, FaultPlan, FaultStats, ShardedRuntime
from repro.runtime.backend import (
    EXIT_FAULT_CRASH,
    EXIT_FRAME_CORRUPT,
    ProcessBackend,
)
from repro.runtime.sharder import FlowSharder

#: Slow pacing so shards tick many times (fault trigger ordinals exist).
RATE_BPS = 8e6
PACKET_BYTES = 100


def _reap_children(deadline_s=5.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()
        if not children:
            return []
        time.sleep(0.05)
    return multiprocessing.active_children()


def _packets(flow_ids, size_bytes=PACKET_BYTES):
    return [Packet(flow_id=flow_id, size_bytes=size_bytes) for flow_id in flow_ids]


def _assert_flow_fifo(runtime):
    sequences = {}
    for _now, packet in runtime.transmit_log:
        sequences.setdefault(packet.flow_id, []).append(packet.packet_id)
    for flow_id, sequence in sequences.items():
        assert sequence == sorted(sequence), f"flow {flow_id} reordered"


def _assert_residual_clean(runtime):
    residual = runtime.residual_state()
    assert all(value == 0 for value in residual.values()), residual


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor_strike")

    @pytest.mark.parametrize(
        "kwargs",
        [dict(target=-1), dict(at=0), dict(count=0)],
    )
    def test_bad_event_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent("shard_crash", **kwargs)

    def test_from_seed_is_deterministic(self):
        draw = lambda: FaultPlan.from_seed(  # noqa: E731
            99, num_shards=4, events=6, ingress_lanes=2, kinds=None or
            ("shard_crash", "shard_stall", "handoff_drop", "ingress_wedge"),
        )
        assert draw().describe() == draw().describe()

    def test_from_seed_rejects_wedge_without_lanes(self):
        with pytest.raises(ValueError, match="ingress_lanes"):
            FaultPlan.from_seed(1, num_shards=2, kinds=("ingress_wedge",))

    def test_shard_events_fire_once_in_tick_order(self):
        plan = FaultPlan(
            [
                FaultEvent("shard_stall", target=0, at=2),
                FaultEvent("shard_crash", target=0, at=4),
            ]
        )
        fired = [plan.next_shard_action(0) for _ in range(6)]
        assert fired == [None, "shard_stall", None, "shard_crash", None, None]

    def test_handoff_budget_is_consumed_across_calls(self):
        plan = FaultPlan([FaultEvent("handoff_drop", target=1, count=5)])
        assert plan.take_handoff_drops(1, 3) == 3
        assert plan.take_handoff_drops(1, 3) == 2
        assert plan.take_handoff_drops(1, 3) == 0
        assert plan.take_handoff_drops(0, 3) == 0  # other shards untouched

    def test_runtime_rejects_out_of_range_targets(self):
        plan = FaultPlan([FaultEvent("shard_crash", target=7)])
        with pytest.raises(ValueError, match="targets shard 7"):
            ShardedRuntime(2, fault_plan=plan)
        wedge = FaultPlan([FaultEvent("ingress_wedge", target=3)])
        with pytest.raises(ValueError, match="ingress lane 3"):
            ShardedRuntime(2, ingress_cores=1, fault_plan=wedge)


class TestShardCrashRecovery:
    def _run(self, at, num_shards=2, packets=60, flows=6):
        runtime = ShardedRuntime(
            num_shards,
            default_rate_bps=RATE_BPS,
            record_transmits=True,
            fault_plan=FaultPlan([FaultEvent("shard_crash", target=0, at=at)]),
        )
        for i in range(packets):
            runtime.submit(Packet(flow_id=i % flows, size_bytes=PACKET_BYTES))
        runtime.run()
        return runtime

    def test_every_packet_accounted_and_fifo_preserved(self):
        runtime = self._run(at=2)
        faults = runtime.fault_stats
        assert faults.crashes_injected == 1
        assert faults.shards_recovered == 1
        # The crash-loss ledger balances: delivered + lost == offered.
        assert runtime.transmitted + faults.packets_lost == 60
        _assert_flow_fifo(runtime)
        _assert_residual_clean(runtime)

    def test_mailbox_survives_as_salvage(self):
        # Crash before the first tick: everything still sits in the
        # producer-owned mailbox, so nothing is lost — only salvaged.
        runtime = self._run(at=1)
        faults = runtime.fault_stats
        assert faults.packets_lost == 0
        assert faults.packets_salvaged > 0
        assert runtime.transmitted == 60

    def test_recovery_log_and_telemetry_block(self):
        runtime = self._run(at=2)
        telemetry = runtime.telemetry()
        assert telemetry.faults["crashes_injected"] == 1
        (entry,) = [
            e for e in telemetry.faults["recovery_log"] if e["kind"] == "shard_crash"
        ]
        assert entry["shard"] == 0
        assert entry["recovered_at_ns"] > entry["failed_at_ns"]
        assert telemetry.as_dict()["faults"]["shards_recovered"] == 1
        # Retired incarnations stay in the per-shard telemetry merge.
        assert sum(shard.ingested for shard in telemetry.shards) >= runtime.transmitted

    def test_disarmed_runtime_reports_no_faults(self):
        runtime = ShardedRuntime(2, default_rate_bps=RATE_BPS, record_transmits=True)
        for i in range(20):
            runtime.submit(Packet(flow_id=i % 4, size_bytes=PACKET_BYTES))
        runtime.run()
        assert runtime.fault_stats.as_dict() == FaultStats().as_dict()
        assert runtime.telemetry().faults["recovery_log"] == []


class TestShardStall:
    def test_stall_is_cleared_and_nothing_is_lost(self):
        runtime = ShardedRuntime(
            2,
            default_rate_bps=RATE_BPS,
            record_transmits=True,
            fault_plan=FaultPlan([FaultEvent("shard_stall", target=1, at=2)]),
        )
        for i in range(40):
            runtime.submit(Packet(flow_id=i % 8, size_bytes=PACKET_BYTES))
        runtime.run()
        faults = runtime.fault_stats
        assert faults.stalls_injected == 1
        assert faults.stalls_cleared == 1
        assert runtime.transmitted == 40
        _assert_flow_fifo(runtime)
        _assert_residual_clean(runtime)


class TestIngressWedge:
    def test_wedged_lane_is_unwedged_and_ring_drains(self):
        runtime = ShardedRuntime(
            2,
            ingress_cores=1,
            default_rate_bps=RATE_BPS,
            record_transmits=True,
            fault_plan=FaultPlan([FaultEvent("ingress_wedge", target=0, at=1)]),
        )
        for start in range(0, 40, 8):
            runtime.submit_batch(_packets([i % 8 for i in range(start, start + 8)]))
        runtime.run()
        faults = runtime.fault_stats
        assert faults.wedges_injected == 1
        assert faults.wedges_cleared == 1
        assert runtime.transmitted == 40
        _assert_flow_fifo(runtime)
        _assert_residual_clean(runtime)


class TestHandoffDrops:
    def test_drops_are_counted_not_committed(self):
        runtime = ShardedRuntime(
            1,
            default_rate_bps=RATE_BPS,
            record_transmits=True,
            fault_plan=FaultPlan([FaultEvent("handoff_drop", target=0, count=3)]),
        )
        accepted = sum(
            1
            for i in range(20)
            if runtime.submit(Packet(flow_id=i % 4, size_bytes=PACKET_BYTES))
        )
        runtime.run()
        faults = runtime.fault_stats
        assert faults.handoff_drops == 3
        assert accepted == 17
        assert runtime.transmitted == 17
        # The dropped packets never became pending anywhere.
        _assert_residual_clean(runtime)
        _assert_flow_fifo(runtime)


class TestLeaseDeadlineEscalation:
    def test_overdue_lease_is_escalated_and_reclaimed(self):
        # One elephant flow pinned to shard 0: shard 1 is a pure thief whose
        # lease stays out far past a 1 ns deadline — the supervision sweep
        # escalates the overdue thief to a crash-and-recover and the lease
        # is reclaimed through the victim.
        sharder = FlowSharder(2)
        sharder.pin(5, 0)
        runtime = ShardedRuntime(
            2,
            sharder=sharder,
            default_rate_bps=10e9,  # 1500 B => 1.2 us spacing
            quantum_ns=10_000,
            record_transmits=True,
            steal_enabled=True,
            steal_min_backlog=1,
            lease_deadline_ns=1,
            supervise_interval_ns=20_000,
        )
        runtime.submit_batch(_packets([5] * 40, size_bytes=1500))
        runtime.run()
        faults = runtime.fault_stats
        assert faults.deadline_escalations >= 1
        assert faults.leases_reclaimed >= 1
        assert runtime.transmitted + faults.packets_lost == 40
        _assert_flow_fifo(runtime)
        _assert_residual_clean(runtime)


class TestProcessFaultRecovery:
    def _run(self, backend, num_shards=2, bursts=6, per_burst=8):
        runtime = ShardedRuntime(
            num_shards,
            default_rate_bps=1e9,
            quantum_ns=10_000,
            backend=backend,
        )
        offered = 0
        for t in range(bursts):
            runtime.submit_at(t * 50_000, _packets(range(per_burst), size_bytes=1500))
            offered += per_burst
        runtime.run()
        return runtime, offered

    def test_child_crash_is_restarted_and_replayed(self):
        backend = ProcessBackend(restart_backoff_s=0.01, faults={0: ("child_crash", 2)})
        runtime, offered = self._run(backend)
        assert runtime.transmitted == offered
        (entry,) = backend.restart_log
        assert entry["shard"] == 0
        assert entry["reason"] == "died"
        assert entry["exit_code"] == EXIT_FAULT_CRASH
        _assert_flow_fifo(runtime)
        assert _reap_children() == []

    def test_shm_corruption_kills_and_restarts_on_fresh_ring(self):
        backend = ProcessBackend(restart_backoff_s=0.01, faults={1: ("shm_corrupt", 2)})
        runtime, offered = self._run(backend)
        assert runtime.transmitted == offered
        (entry,) = backend.restart_log
        assert entry["shard"] == 1
        assert entry["exit_code"] == EXIT_FRAME_CORRUPT
        assert _reap_children() == []

    def test_hung_child_is_detected_by_watermark_and_restarted(self):
        backend = ProcessBackend(
            restart_backoff_s=0.01,
            hang_timeout_s=0.3,
            faults={0: ("child_hang", 2)},
        )
        runtime, offered = self._run(backend)
        assert runtime.transmitted == offered
        (entry,) = backend.restart_log
        assert entry["reason"] == "hung"
        assert entry["acked_bursts"] == 1  # watermark froze after burst 1
        assert _reap_children() == []

    def test_faults_accept_a_fault_plan(self):
        plan = FaultPlan([FaultEvent("child_crash", target=0, at=1)])
        backend = ProcessBackend(restart_backoff_s=0.01, faults=plan)
        runtime, offered = self._run(backend)
        assert runtime.transmitted == offered
        assert backend.restart_log[0]["exit_code"] == EXIT_FAULT_CRASH

    def test_restart_budget_exhaustion_names_shard_and_exit_code(self):
        backend = ProcessBackend(
            restart_backoff_s=0.01, max_restarts=0, faults={0: ("child_crash", 1)}
        )
        runtime = ShardedRuntime(
            1, default_rate_bps=1e9, quantum_ns=10_000, backend=backend
        )
        runtime.submit_batch(_packets(range(8), size_bytes=1500))
        with pytest.raises(RuntimeError, match=rf"shard 0 .*exit code {EXIT_FAULT_CRASH}"):
            runtime.run()
        assert _reap_children() == []

    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_restarts"):
            ProcessBackend(max_restarts=-1)
        with pytest.raises(ValueError, match="hang_timeout_s"):
            ProcessBackend(hang_timeout_s=0)
        with pytest.raises(ValueError, match="ack_every"):
            ProcessBackend(ack_every=0)
