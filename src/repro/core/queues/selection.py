"""Queue-selection guide — a programmatic version of Figure 20.

The paper closes its evaluation with a decision tree telling an operator
which priority queue to use for a given scheduling policy:

1. Few priority levels (below a threshold of ~1k)?  Any queue will do.
2. Many levels over a *fixed* range?  Use a (hierarchical) FFS queue.
3. Many levels over a *moving* range, not uniformly occupied?  Use cFFS.
4. Many levels over a moving range with highly occupied levels?  Use the
   approximate gradient queue.

:func:`recommend_queue` encodes that tree and returns both the decision and
the reasoning path, and :func:`build_recommended_queue` instantiates the
selected implementation, so policies can be wired up from a workload
description alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .base import BucketSpec, IntegerPriorityQueue
from .bucket_heap import BucketedHeapQueue
from .circular_ffs import CircularFFSQueue
from .circular_gradient import CircularApproximateGradientQueue
from .comparison import BinaryHeapQueue
from .gradient import ApproximateGradientQueue, fit_bucket_spec
from .hierarchical_ffs import HierarchicalFFSQueue

#: The paper's empirically-determined threshold: below ~1k priority levels the
#: choice of queue "has little impact".
PRIORITY_LEVEL_THRESHOLD = 1000


class QueueKind(Enum):
    """The queue families the decision tree can recommend."""

    ANY = "any"
    FFS = "ffs"
    CIRCULAR_FFS = "cffs"
    APPROXIMATE = "approximate"


@dataclass(frozen=True)
class WorkloadProfile:
    """Characteristics of a scheduling policy relevant to queue selection.

    Attributes:
        priority_levels: number of distinct rank values (buckets) needed.
        moving_range: True when ranks advance over time (deadlines,
            transmission timestamps) rather than spanning a fixed set.
        uniform_occupancy: True when all priority levels are expected to
            serve a similar number of packets (e.g. timestamp shaping, LSTF,
            EDF); False for skewed policies such as strict priority.
        description: optional free-form label used in reports.
    """

    priority_levels: int
    moving_range: bool
    uniform_occupancy: bool
    description: str = ""


@dataclass
class Recommendation:
    """Result of walking the Figure 20 decision tree."""

    kind: QueueKind
    reasons: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        path = " -> ".join(self.reasons)
        return f"{self.kind.value} ({path})"


def recommend_queue(
    profile: WorkloadProfile, threshold: int = PRIORITY_LEVEL_THRESHOLD
) -> Recommendation:
    """Walk the Figure 20 decision tree for ``profile``."""
    if profile.priority_levels <= 0:
        raise ValueError("priority_levels must be positive")
    reasons: list[str] = []
    if profile.priority_levels <= threshold:
        reasons.append(
            f"{profile.priority_levels} priority levels <= threshold {threshold}"
        )
        return Recommendation(QueueKind.ANY, reasons)
    reasons.append(
        f"{profile.priority_levels} priority levels > threshold {threshold}"
    )
    if not profile.moving_range:
        reasons.append("fixed priority range")
        return Recommendation(QueueKind.FFS, reasons)
    reasons.append("moving priority range")
    if profile.uniform_occupancy:
        reasons.append("priority levels similarly occupied")
        return Recommendation(QueueKind.APPROXIMATE, reasons)
    reasons.append("priority levels unevenly occupied")
    return Recommendation(QueueKind.CIRCULAR_FFS, reasons)


def build_recommended_queue(
    profile: WorkloadProfile,
    granularity: int = 1,
    base_priority: int = 0,
    threshold: int = PRIORITY_LEVEL_THRESHOLD,
    alpha: int = 16,
) -> IntegerPriorityQueue:
    """Instantiate the queue implementation recommended for ``profile``.

    For the ``ANY`` recommendation a plain binary heap is returned (the
    cheapest structure memory-wise for small level counts); the other
    branches return the corresponding bucketed queue sized to the profile.
    """
    recommendation = recommend_queue(profile, threshold)
    spec = BucketSpec(
        num_buckets=profile.priority_levels,
        granularity=granularity,
        base_priority=base_priority,
    )
    if recommendation.kind is QueueKind.ANY:
        return BinaryHeapQueue(spec)
    if recommendation.kind is QueueKind.FFS:
        return HierarchicalFFSQueue(spec)
    if recommendation.kind is QueueKind.CIRCULAR_FFS:
        return CircularFFSQueue(spec)
    # Approximate branch: the approximate queue covers a bounded number of
    # buckets, so coarsen the granularity to fit (the paper's granularity /
    # accuracy trade-off).
    approx_spec = fit_bucket_spec(
        profile.priority_levels,
        granularity=granularity,
        base_priority=base_priority,
        alpha=alpha,
    )
    if profile.moving_range:
        return CircularApproximateGradientQueue(approx_spec, alpha=alpha)
    return ApproximateGradientQueue(approx_spec, alpha=alpha)


#: Canonical workload profiles used in the paper's discussion, exposed so the
#: examples and the Figure 20 benchmark can exercise realistic inputs.
CANONICAL_PROFILES: dict[str, WorkloadProfile] = {
    "ieee_802_1q": WorkloadProfile(
        priority_levels=8,
        moving_range=False,
        uniform_occupancy=False,
        description="Eight 802.1Q strict-priority levels",
    ),
    "pfabric_remaining_size": WorkloadProfile(
        priority_levels=100_000,
        moving_range=False,
        uniform_occupancy=False,
        description="pFabric remaining flow size (fixed range of sizes)",
    ),
    "per_flow_pacing": WorkloadProfile(
        priority_levels=20_000,
        moving_range=True,
        uniform_occupancy=False,
        description="Carousel-style per-flow rate limiting with a wide range of rates",
    ),
    "lstf": WorkloadProfile(
        priority_levels=50_000,
        moving_range=True,
        uniform_occupancy=True,
        description="Least Slack Time First over a moving deadline range",
    ),
    "hclock_hierarchy": WorkloadProfile(
        priority_levels=10_000,
        moving_range=True,
        uniform_occupancy=True,
        description="hClock hierarchical shares (virtual-time tags)",
    ),
    "fallback_bucketed": WorkloadProfile(
        priority_levels=5_000,
        moving_range=False,
        uniform_occupancy=True,
        description="Fixed-range uniformly occupied ranks (approx also viable)",
    ),
}

#: Mapping used when an explicit (non-recommended) choice is needed, e.g. by
#: ablation benchmarks comparing all families on the same workload.
QUEUE_FAMILIES = {
    "bh": BucketedHeapQueue,
    "cffs": CircularFFSQueue,
    "ffs": HierarchicalFFSQueue,
    "approx": ApproximateGradientQueue,
    "heap": BinaryHeapQueue,
}


__all__ = [
    "CANONICAL_PROFILES",
    "PRIORITY_LEVEL_THRESHOLD",
    "QUEUE_FAMILIES",
    "QueueKind",
    "Recommendation",
    "WorkloadProfile",
    "build_recommended_queue",
    "recommend_queue",
]
