"""Scheduling trees: hierarchies of scheduling transactions (the PIFO tree).

A policy hierarchy (Figure 7) is a tree whose leaves receive packets and
whose internal nodes each order their children with one PIFO.  Enqueuing a
packet pushes one element into every PIFO on the path from its leaf to the
root: the packet itself at the leaf, and a reference to the relevant child at
every ancestor.  Dequeuing pops the root to select a child, recurses into it,
and finally pops a packet from a leaf — so each node's PIFO length always
equals the number of packets pending underneath it.

Node ranking is pluggable via :class:`NodeRankPolicy`; implementations for
FIFO, strict priority and weighted fair queueing are provided here (they are
the building blocks the policy compiler emits).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .packet import Packet
from .pifo import PIFOBlock, QueueFactory, default_queue_factory
from .transactions import RateLimit, ShapingTransaction
from ..queues import BucketSpec


class NodeRankPolicy(abc.ABC):
    """Computes the rank a node assigns to one of its children for a packet."""

    @abc.abstractmethod
    def rank(self, child_name: str, packet: Packet, now_ns: int) -> int:
        """Rank of the element representing ``child_name`` carrying ``packet``."""

    def on_dequeue(self, child_name: str, packet: Packet, now_ns: int) -> None:
        """Optional hook run when a packet below ``child_name`` departs."""

    def describe(self) -> str:
        """Human-readable policy name for scheduler descriptions."""
        return type(self).__name__


class FIFORankPolicy(NodeRankPolicy):
    """First-in-first-out among children (rank = arrival sequence)."""

    def __init__(self) -> None:
        self._sequence = 0

    def rank(self, child_name: str, packet: Packet, now_ns: int) -> int:
        self._sequence += 1
        return self._sequence


class StrictPriorityRankPolicy(NodeRankPolicy):
    """Strict priority among children; lower priority value dequeues first.

    Ties within the same priority keep FIFO order because the bucketed queues
    preserve arrival order within a bucket.
    """

    def __init__(self, priorities: Dict[str, int]) -> None:
        if not priorities:
            raise ValueError("priorities mapping must not be empty")
        self.priorities = dict(priorities)

    def rank(self, child_name: str, packet: Packet, now_ns: int) -> int:
        try:
            return self.priorities[child_name]
        except KeyError as exc:
            raise KeyError(f"no priority configured for child {child_name!r}") from exc


class WFQRankPolicy(NodeRankPolicy):
    """Weighted fair queueing via start-time fair queueing virtual times.

    Each child accumulates a virtual finish time advanced by
    ``packet_bytes / weight``; the rank is the packet's virtual *start* time,
    which is the SFQ approximation of WFQ the paper cites as the practical
    software realisation.  Virtual times are tracked in integer "virtual
    byte" units so they can index a bucketed queue directly.
    """

    def __init__(self, weights: Dict[str, float], quantum_bytes: int = 100) -> None:
        if not weights:
            raise ValueError("weights mapping must not be empty")
        if any(weight <= 0 for weight in weights.values()):
            raise ValueError("weights must be positive")
        if quantum_bytes <= 0:
            raise ValueError("quantum_bytes must be positive")
        self.weights = dict(weights)
        self.quantum_bytes = quantum_bytes
        self._virtual_time = 0
        self._finish_times: Dict[str, int] = {}

    def rank(self, child_name: str, packet: Packet, now_ns: int) -> int:
        weight = self.weights.get(child_name, 1.0)
        start = max(self._virtual_time, self._finish_times.get(child_name, 0))
        finish = start + max(1, int(packet.size_bytes / weight / self.quantum_bytes))
        self._finish_times[child_name] = finish
        return start

    def on_dequeue(self, child_name: str, packet: Packet, now_ns: int) -> None:
        # Advance global virtual time to the served child's start time so idle
        # children do not accumulate unbounded credit.
        self._virtual_time = max(
            self._virtual_time, self._finish_times.get(child_name, 0) - 1
        )


@dataclass
class NodeConfig:
    """Static configuration of one tree node."""

    name: str
    parent: Optional[str] = None
    rank_policy: Optional[NodeRankPolicy] = None
    rate_limit: Optional[RateLimit] = None
    pifo_buckets: int = 4096
    pifo_granularity: int = 1
    metadata: Dict[str, Any] = field(default_factory=dict)


class TreeNode:
    """Runtime state of a scheduling tree node."""

    def __init__(self, config: NodeConfig, queue_factory: QueueFactory) -> None:
        self.config = config
        self.name = config.name
        self.parent: Optional["TreeNode"] = None
        self.children: Dict[str, "TreeNode"] = {}
        self.rank_policy = config.rank_policy or FIFORankPolicy()
        self.shaping: Optional[ShapingTransaction] = (
            ShapingTransaction(config.name, config.rate_limit)
            if config.rate_limit
            else None
        )
        spec = BucketSpec(
            num_buckets=config.pifo_buckets, granularity=config.pifo_granularity
        )
        self.pifo = PIFOBlock(spec, queue_factory, name=f"{config.name}.pifo")

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeNode({self.name!r}, pending={len(self.pifo)})"


class SchedulingTree:
    """A PIFO tree assembled from :class:`NodeConfig` entries.

    Args:
        configs: node configurations; exactly one must have ``parent=None``
            (the root) and every other parent must exist.
        queue_factory: backing integer queue for every node PIFO.
    """

    def __init__(
        self,
        configs: List[NodeConfig],
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        if not configs:
            raise ValueError("a scheduling tree needs at least one node")
        self.nodes: Dict[str, TreeNode] = {}
        for config in configs:
            if config.name in self.nodes:
                raise ValueError(f"duplicate node name {config.name!r}")
            self.nodes[config.name] = TreeNode(config, queue_factory)
        roots = []
        for config in configs:
            node = self.nodes[config.name]
            if config.parent is None:
                roots.append(node)
                continue
            parent = self.nodes.get(config.parent)
            if parent is None:
                raise ValueError(
                    f"node {config.name!r} references unknown parent {config.parent!r}"
                )
            node.parent = parent
            parent.children[node.name] = node
        if len(roots) != 1:
            raise ValueError(f"expected exactly one root node, found {len(roots)}")
        self.root = roots[0]
        self._size = 0

    # -- structure helpers -------------------------------------------------------

    def node(self, name: str) -> TreeNode:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError as exc:
            raise KeyError(f"unknown node {name!r}") from exc

    def leaves(self) -> List[TreeNode]:
        """All leaf nodes."""
        return [node for node in self.nodes.values() if node.is_leaf]

    def path_to_root(self, leaf_name: str) -> List[TreeNode]:
        """Nodes from ``leaf_name`` up to and including the root."""
        node: Optional[TreeNode] = self.node(leaf_name)
        path = []
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def shaping_transactions_on_path(self, leaf_name: str) -> List[ShapingTransaction]:
        """Rate limits encountered from ``leaf_name`` to the root, inner first."""
        return [
            node.shaping for node in self.path_to_root(leaf_name) if node.shaping
        ]

    # -- PIFO-tree operations ------------------------------------------------------

    def enqueue(self, leaf_name: str, packet: Packet, now_ns: int = 0) -> None:
        """Push ``packet`` at ``leaf_name`` and child references up to the root."""
        path = self.path_to_root(leaf_name)
        leaf = path[0]
        if not leaf.is_leaf:
            raise ValueError(f"node {leaf_name!r} is not a leaf")
        leaf_rank = leaf.rank_policy.rank(leaf.name, packet, now_ns)
        packet.rank = leaf_rank
        leaf.pifo.push(leaf_rank, packet)
        for child, parent in zip(path[:-1], path[1:]):
            rank = parent.rank_policy.rank(child.name, packet, now_ns)
            parent.pifo.push(rank, child.name)
        self._size += 1

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        """Pop the next packet according to the hierarchy, or ``None`` if idle."""
        if self._size == 0:
            return None
        node = self.root
        while not node.is_leaf:
            _rank, child_name = node.pifo.pop()
            next_node = node.children[child_name]
            node.rank_policy.on_dequeue(child_name, _packet_placeholder, now_ns)
            node = next_node
        _rank, packet = node.pifo.pop()
        self._size -= 1
        return packet

    def peek_min_rank(self) -> Optional[int]:
        """Smallest root rank currently pending (``None`` when idle)."""
        return self.root.pifo.min_rank()

    def __len__(self) -> int:
        return self._size

    @property
    def empty(self) -> bool:
        """True when no packets are pending anywhere in the tree."""
        return self._size == 0

    def pending_per_node(self) -> Dict[str, int]:
        """Mapping of node name to pending element count (for tests/inspection)."""
        return {name: len(node.pifo) for name, node in self.nodes.items()}

    def __iter__(self) -> Iterator[TreeNode]:
        return iter(self.nodes.values())


#: Placeholder packet handed to ``on_dequeue`` hooks of internal nodes, which
#: only need the child identity (the actual packet is only known at the leaf).
_packet_placeholder = Packet(flow_id=-1, size_bytes=0)


__all__ = [
    "FIFORankPolicy",
    "NodeConfig",
    "NodeRankPolicy",
    "SchedulingTree",
    "StrictPriorityRankPolicy",
    "TreeNode",
    "WFQRankPolicy",
]
