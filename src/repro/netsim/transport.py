"""Simplified transports for the fabric simulation: DCTCP and pFabric.

Both transports implement the same reliability skeleton — a sliding window of
MTU-sized packets, per-packet ACKs, timeout-based retransmission — and differ
in how the window reacts to congestion signals:

* :class:`DctcpTransport` grows its window by one MSS per RTT and shrinks it
  proportionally to the fraction of ECN-marked ACKs (the DCTCP control law
  with gain 1/16);
* :class:`PFabricTransport` keeps a fixed window of roughly two
  bandwidth-delay products and relies on the fabric's priority scheduling /
  dropping: packets carry the flow's remaining size, so nearly-complete flows
  overtake long ones inside the switches.

The completion time of a flow is measured from its start until the ACK of its
last packet is received, which is what the FCT statistics of Figure 19 use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .elements import Host
from .simulator import Simulator
from ..core.model.packet import Packet

MTU_BYTES = 1500
ACK_BYTES = 40


@dataclass
class FlowRecord:
    """Bookkeeping and result of one simulated flow."""

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    start_ns: int
    finish_ns: Optional[int] = None
    retransmissions: int = 0

    @property
    def completed(self) -> bool:
        """True once every byte has been acknowledged."""
        return self.finish_ns is not None

    @property
    def fct_seconds(self) -> float:
        """Flow completion time in seconds."""
        if self.finish_ns is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return (self.finish_ns - self.start_ns) / 1e9

    @property
    def num_packets(self) -> int:
        """Number of MTU-sized packets making up the flow."""
        return max(1, -(-self.size_bytes // MTU_BYTES))


class _BaseTransport:
    """Shared sliding-window sender/receiver logic."""

    #: Retransmission timeout; a small multiple of the fabric RTT.
    rto_ns = 300_000

    def __init__(
        self,
        simulator: Simulator,
        fabric,
        record: FlowRecord,
        on_complete: Callable[[FlowRecord], None],
        initial_window: int = 10,
    ) -> None:
        self.simulator = simulator
        self.fabric = fabric
        self.record = record
        self.on_complete = on_complete
        self.window = float(initial_window)
        self.total_packets = record.num_packets
        self.next_seq = 0
        self.acked: set[int] = set()
        self.in_flight: Dict[int, int] = {}  # seq -> send time
        self.src_host: Host = fabric.host(record.src)
        self.dst_host: Host = fabric.host(record.dst)
        self.dst_host.register_flow_receiver(
            record.flow_id, self._on_packet_at_receiver
        )
        self.src_host.register_flow_receiver(record.flow_id, self._on_packet_at_sender)
        self._done = False

    # -- sending ----------------------------------------------------------------------

    def start(self) -> None:
        """Begin transmission (called at the flow's arrival time)."""
        self._fill_window()

    def _remaining_bytes(self, seq: int) -> int:
        remaining_packets = self.total_packets - seq
        return max(1, remaining_packets * MTU_BYTES)

    def _fill_window(self) -> None:
        while (
            len(self.in_flight) < max(1, int(self.window))
            and self.next_seq < self.total_packets
        ):
            self._send_data(self.next_seq)
            self.next_seq += 1

    def _send_data(self, seq: int, retransmission: bool = False) -> None:
        if self._done or seq in self.acked:
            return
        size = min(MTU_BYTES, self.record.size_bytes - seq * MTU_BYTES) or MTU_BYTES
        packet = Packet(flow_id=self.record.flow_id, size_bytes=max(64, size))
        packet.metadata.update(
            {
                "kind": "data",
                "seq": seq,
                "src": self.record.src,
                "dst": self.record.dst,
                "remaining_bytes": self._remaining_bytes(seq),
            }
        )
        if retransmission:
            self.record.retransmissions += 1
        self.in_flight[seq] = self.simulator.now_ns
        self.src_host.uplink().send(packet)
        self.simulator.schedule(self.rto_ns, lambda seq=seq: self._check_timeout(seq))

    def _check_timeout(self, seq: int) -> None:
        if self._done or seq in self.acked:
            return
        sent_at = self.in_flight.get(seq)
        if sent_at is None:
            return
        if self.simulator.now_ns - sent_at >= self.rto_ns:
            self.on_timeout(seq)
            self._send_data(seq, retransmission=True)

    # -- receiving -----------------------------------------------------------------------

    def _on_packet_at_receiver(self, packet: Packet) -> None:
        if packet.flow_id != self.record.flow_id:
            return
        if packet.metadata.get("kind") != "data":
            return
        ack = Packet(flow_id=self.record.flow_id, size_bytes=ACK_BYTES)
        ack.metadata.update(
            {
                "kind": "ack",
                "seq": packet.metadata["seq"],
                "src": self.record.dst,
                "dst": self.record.src,
                "ecn_echo": bool(packet.metadata.get("ecn")),
                "remaining_bytes": 1,  # ACKs get top priority in pFabric ports
            }
        )
        self.dst_host.uplink().send(ack)

    def _on_packet_at_sender(self, packet: Packet) -> None:
        if self._done or packet.flow_id != self.record.flow_id:
            return
        if packet.metadata.get("kind") != "ack":
            return
        seq = packet.metadata["seq"]
        if seq in self.acked:
            return
        self.acked.add(seq)
        self.in_flight.pop(seq, None)
        self.on_ack(packet)
        if len(self.acked) >= self.total_packets:
            self._done = True
            self.record.finish_ns = self.simulator.now_ns
            self.on_complete(self.record)
            return
        self._fill_window()

    # -- congestion-control hooks ------------------------------------------------------------

    def on_ack(self, ack: Packet) -> None:
        """Adjust the window in response to an ACK."""

    def on_timeout(self, seq: int) -> None:
        """React to a retransmission timeout."""


class DctcpTransport(_BaseTransport):
    """A compact DCTCP sender: ECN-fraction-proportional window reduction."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.alpha = 0.0
        self._acks_in_window = 0
        self._marks_in_window = 0
        self._window_target = max(1, int(self.window))

    def on_ack(self, ack: Packet) -> None:
        self._acks_in_window += 1
        if ack.metadata.get("ecn_echo"):
            self._marks_in_window += 1
        # Once per window of ACKs, update alpha and apply the DCTCP cut.
        if self._acks_in_window >= max(1, int(self.window)):
            fraction = self._marks_in_window / self._acks_in_window
            self.alpha = (1 - 1 / 16) * self.alpha + (1 / 16) * fraction
            if self._marks_in_window:
                self.window = max(1.0, self.window * (1 - self.alpha / 2))
            else:
                self.window += 1.0
            self._acks_in_window = 0
            self._marks_in_window = 0
        else:
            # Additive increase spread across the window.
            self.window += 1.0 / max(1.0, self.window)

    def on_timeout(self, seq: int) -> None:
        self.window = max(1.0, self.window / 2)


class PFabricTransport(_BaseTransport):
    """pFabric's minimal transport: fixed (BDP-sized) window, aggressive start."""

    def __init__(self, *args, window_packets: int = 12, **kwargs) -> None:
        kwargs.setdefault("initial_window", window_packets)
        super().__init__(*args, **kwargs)
        self.window = float(window_packets)

    def on_timeout(self, seq: int) -> None:
        # pFabric handles loss with small-timeout retransmission and keeps the
        # window fixed: switch priority dropping does the congestion control.
        return


__all__ = [
    "ACK_BYTES",
    "DctcpTransport",
    "FlowRecord",
    "MTU_BYTES",
    "PFabricTransport",
]
