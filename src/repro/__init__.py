"""repro — a reproduction of "Eiffel: Efficient and Flexible Software Packet
Scheduling" (Saeed et al., USENIX NSDI 2019).

Public surface:

* :mod:`repro.core.queues` — integer priority queues (cFFS, gradient queues,
  baselines) and the queue-selection guide.
* :mod:`repro.core.model` — the extended PIFO programming model: scheduling
  and shaping transactions, per-flow ranking, on-dequeue ranking, the
  decoupled shaper, and the policy compiler.
* :mod:`repro.core.policies` — ready-made policies (pFabric, hClock, pacing,
  strict priority, fair queueing, EDF/LSTF/LQF/SRTF, ...).
* :mod:`repro.kernel` — event-driven qdisc substrate (FQ/pacing, Carousel and
  Eiffel qdiscs) with CPU accounting.
* :mod:`repro.bess` — busy-polling userspace pipeline substrate (BESS-like).
* :mod:`repro.netsim` — packet-level datacenter network simulator used for
  the pFabric flow-completion-time experiments.
* :mod:`repro.runtime` — sharded multi-core scheduling runtime: RSS-style
  flow sharding, batched SPSC mailboxes, per-shard cFFS workers, skew-aware
  hot-flow rebalancing, and multi-queue adapters for netsim and the kernel
  layer.
* :mod:`repro.traffic`, :mod:`repro.cpu`, :mod:`repro.analysis` — workload
  generation, CPU cost modelling and result formatting.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
