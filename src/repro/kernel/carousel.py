"""Carousel qdisc baseline — a timing wheel driven by a periodic timer.

Carousel expresses every rate limit as a per-packet transmission timestamp
and stores packets in a timing wheel.  Its weakness, per the Eiffel paper, is
the dequeue trigger: the wheel cannot report the earliest deadline cheaply,
so "a timer fires every time instant (according to the granularity of the
timing wheel) and checks whether it has packets that should be sent" — a
constant softirq load that Figure 10 (right) shows dominating Carousel's CPU
cost relative to Eiffel.

This qdisc follows the recommendation the paper received from Carousel's
authors for the kernel comparison: all packets go into a single timing wheel,
and the qdisc's timer re-arms every wheel slot while any packet is queued.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .qdisc import Qdisc
from ..core.model.packet import Packet
from ..core.model.transactions import RateLimit, ShapingTransaction
from ..core.queues import TimingWheel


class CarouselQdisc(Qdisc):
    """Timing-wheel shaping qdisc with per-slot timer polling.

    Args:
        flow_rates: per-flow pacing rates (``SO_MAX_PACING_RATE``).
        default_rate_bps: rate for unconfigured flows (``None`` = unpaced).
        horizon_ns: wheel horizon (2 s in the paper's configuration).
        slot_ns: wheel slot granularity; the timer fires every slot, so this
            directly sets the polling frequency (and the softirq cost).
    """

    name = "carousel"

    def __init__(
        self,
        flow_rates: Optional[Dict[int, float]] = None,
        default_rate_bps: Optional[float] = None,
        horizon_ns: int = 2_000_000_000,
        slot_ns: int = 100_000,
    ) -> None:
        super().__init__(timer_granularity_ns=slot_ns)
        if horizon_ns <= 0 or slot_ns <= 0:
            raise ValueError("horizon_ns and slot_ns must be positive")
        self.flow_rates = dict(flow_rates or {})
        self.default_rate_bps = default_rate_bps
        self.slot_ns = slot_ns
        num_slots = max(1, horizon_ns // slot_ns)
        self._wheel = TimingWheel(num_slots=num_slots, granularity=slot_ns)
        self._shapers: Dict[int, ShapingTransaction] = {}
        self._backlog = 0
        self._wheel_snapshot = 0

    # -- configuration -----------------------------------------------------------------

    def set_flow_rate(self, flow_id: int, rate_bps: float) -> None:
        """Configure the pacing rate of ``flow_id``."""
        self.flow_rates[flow_id] = rate_bps
        self._shapers.pop(flow_id, None)

    def _shaper_for(self, flow_id: int) -> Optional[ShapingTransaction]:
        rate = self.flow_rates.get(flow_id, self.default_rate_bps)
        if rate is None:
            return None
        shaper = self._shapers.get(flow_id)
        if shaper is None:
            shaper = ShapingTransaction(f"flow-{flow_id}", RateLimit(rate))
            self._shapers[flow_id] = shaper
        return shaper

    # -- qdisc interface ------------------------------------------------------------------

    def enqueue_packet(self, packet: Packet, now_ns: int) -> None:
        self.system_cost.charge("flow_lookup")
        shaper = self._shaper_for(packet.flow_id)
        send_at = now_ns if shaper is None else shaper.stamp(packet, now_ns)
        packet.metadata["send_at_ns"] = send_at
        self.system_cost.charge("enqueue")
        self.system_cost.charge("bucket_lookup")
        self._wheel.insert(send_at, packet)
        self._backlog += 1

    def dequeue_due(self, now_ns: int, budget: int = 1 << 30) -> List[Packet]:
        slots_before = self._wheel.slot_advances
        released_entries = self._wheel.advance_to(now_ns)
        slots_visited = self._wheel.slot_advances - slots_before
        # Visiting a slot (even an empty one) touches memory: that is the
        # polling cost the paper highlights.
        if slots_visited:
            self.softirq_cost.charge("linear_scan", slots_visited)
        released = []
        for _timestamp, packet in released_entries[:budget]:
            self.softirq_cost.charge("dequeue")
            released.append(packet)
            self.stats.dequeued += 1
            self._backlog -= 1
        # Anything beyond the budget goes back into the wheel (rare).
        self._wheel.insert_batch(
            (max(timestamp, now_ns), packet)
            for timestamp, packet in released_entries[budget:]
        )
        return released

    def soonest_deadline_ns(self, now_ns: int) -> Optional[int]:
        """Carousel polls: the next run is always one slot away while busy."""
        if self._backlog == 0:
            return None
        return now_ns + self.slot_ns

    @property
    def wheel_occupancy(self) -> int:
        """Packets currently stored in the wheel."""
        return len(self._wheel)


__all__ = ["CarouselQdisc"]
