"""Abstract CPU cycle accounting for the simulated substrates.

The paper's headline numbers (Figures 9, 10, 12, 13, 15) are CPU results on
real hardware: cores consumed by a kernel qdisc, or maximum rate sustained by
one busy-polling core.  In an interpreted reproduction the *absolute* cycle
counts of Python code are meaningless, so the substrates instead charge each
data-structure operation an abstract cycle cost taken from the ratios the
paper itself cites (e.g. "BSR takes three cycles", "BSR is 8-32x faster than
DIV") plus conventional costs for cache/memory touches, heap sifts and
red-black rotations.  The *relative* CPU consumption of two scheduler
implementations processing the same packet stream is then determined by how
many of each operation they perform — exactly the quantity the paper's
comparisons hinge on.

Two consumers use this module:

* ``repro.kernel`` converts accumulated cycles into "cores used" given a
  per-core clock rate (Figure 9/10).
* ``repro.bess`` converts a one-core cycle budget per second into a maximum
  sustainable packet rate (Figures 12, 13, 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional


@dataclass(frozen=True)
class OperationCost:
    """Cost, in abstract cycles, of one occurrence of an operation."""

    name: str
    cycles: float
    description: str = ""


#: Instruction latencies cited by the paper (Intel optimization manual): the
#: Bit-Scan instruction completes in ~3 cycles and a 64-bit integer divide is
#: 8-32x slower.  The *operation* costs below add the memory word/bucket
#: accesses that accompany each instruction in a real queue.
BSR_LATENCY_CYCLES = 3.0
DIV_LATENCY_CYCLES = 24.0

#: Default per-operation costs.  The FFS (BSR) and DIV entries follow the
#: Intel optimization-manual figures referenced by the paper; the remaining
#: entries model one cache-line touch per pointer hop / node visit, which is
#: the dominant real-world cost of the comparison structures.
DEFAULT_COSTS: dict[str, OperationCost] = {
    "enqueue": OperationCost("enqueue", 12.0, "bucket append + bookkeeping"),
    "dequeue": OperationCost("dequeue", 12.0, "bucket pop + bookkeeping"),
    "bucket_lookup": OperationCost("bucket_lookup", 4.0, "index computation + load"),
    "ffs_word": OperationCost(
        "ffs_word", 10.0, "BSF/BSR instruction (3 cycles) plus the bitmap word access"
    ),
    "division": OperationCost("division", 24.0, "64-bit integer DIV"),
    "linear_scan": OperationCost("linear_scan", 6.0, "touch one bucket header"),
    "heap_operation": OperationCost("heap_operation", 14.0, "sift step / rotation"),
    "rb_node_visit": OperationCost(
        "rb_node_visit", 80.0, "red-black tree pointer chase (cache miss)"
    ),
    "rotation": OperationCost("rotation", 8.0, "pointer swap on window rotate"),
    "timer_fire": OperationCost("timer_fire", 2000.0, "hrtimer softirq dispatch"),
    "timer_program": OperationCost("timer_program", 300.0, "hrtimer (re)arm"),
    "lock": OperationCost("lock", 60.0, "uncontended qdisc lock acquire/release"),
    "packet_overhead": OperationCost(
        "packet_overhead", 250.0, "skb handling outside the scheduler"
    ),
    "gc_scan": OperationCost("gc_scan", 20.0, "flow garbage-collection step"),
    "flow_lookup": OperationCost("flow_lookup", 30.0, "hash/flow-table lookup"),
    "batch_overhead": OperationCost("batch_overhead", 120.0, "per-batch module call"),
    # Ingress-core (RX pipeline) operations.  The ratios follow the usual
    # budget split of a busy-polling RX core: the poll-loop entry costs about
    # one cache-missy function dispatch per burst, each descriptor read plus
    # buffer unmap is a couple of cache-line touches, and an admission check
    # (occupancy compare / sojourn compare) is register arithmetic on state
    # the loop already holds.
    "rx_poll": OperationCost("rx_poll", 80.0, "RX poll-loop entry (per burst)"),
    "rx_descriptor": OperationCost(
        "rx_descriptor", 18.0, "RX descriptor read + buffer unmap (per packet)"
    ),
    "admission_check": OperationCost(
        "admission_check", 6.0, "admission-policy compare (per packet)"
    ),
}

#: Mapping from :class:`repro.core.queues.base.QueueStats` counter names to
#: cost-table entries, so a queue's counters can be charged in one call.
QUEUE_STATS_COSTS: dict[str, str] = {
    "enqueues": "enqueue",
    "dequeues": "dequeue",
    "bucket_lookups": "bucket_lookup",
    "word_scans": "ffs_word",
    "divisions": "division",
    "linear_scans": "linear_scan",
    "heap_operations": "heap_operation",
    "rotations": "rotation",
}


@dataclass
class CycleAccount:
    """Accumulates cycles charged against named operations."""

    cycles: float = 0.0
    by_operation: dict[str, float] = field(default_factory=dict)

    def charge(self, operation: str, cycles: float, count: float = 1.0) -> None:
        """Charge ``count`` occurrences of ``operation`` at ``cycles`` each."""
        total = cycles * count
        self.cycles += total
        self.by_operation[operation] = self.by_operation.get(operation, 0.0) + total

    def merge(self, other: "CycleAccount") -> None:
        """Add another account's charges into this one."""
        self.cycles += other.cycles
        for operation, cycles in other.by_operation.items():
            self.by_operation[operation] = (
                self.by_operation.get(operation, 0.0) + cycles
            )

    def reset(self) -> None:
        """Zero the account."""
        self.cycles = 0.0
        self.by_operation.clear()


class CostModel:
    """Charges abstract cycles for scheduler operations.

    Args:
        costs: override table; unspecified operations fall back to
            :data:`DEFAULT_COSTS`.
    """

    def __init__(self, costs: Optional[Mapping[str, OperationCost]] = None) -> None:
        self.costs = dict(DEFAULT_COSTS)
        if costs:
            self.costs.update(costs)
        self.account = CycleAccount()

    def cost_of(self, operation: str) -> float:
        """Cycles charged for one occurrence of ``operation``."""
        try:
            return self.costs[operation].cycles
        except KeyError as exc:
            raise KeyError(f"unknown operation {operation!r}") from exc

    def charge(self, operation: str, count: float = 1.0) -> float:
        """Charge ``count`` occurrences of ``operation``; returns cycles charged."""
        cycles = self.cost_of(operation)
        self.account.charge(operation, cycles, count)
        return cycles * count

    def charge_queue_stats(self, stats: Mapping[str, int]) -> float:
        """Charge a queue's operation counters (see ``QueueStats.as_dict``)."""
        total = 0.0
        for counter, operation in QUEUE_STATS_COSTS.items():
            count = stats.get(counter, 0)
            if count:
                total += self.charge(operation, count)
        return total

    @property
    def total_cycles(self) -> float:
        """All cycles charged so far."""
        return self.account.cycles

    def breakdown(self) -> dict[str, float]:
        """Cycles charged per operation."""
        return dict(self.account.by_operation)

    def reset(self) -> None:
        """Zero the accumulated account (the cost table is unchanged)."""
        self.account.reset()


class CpuMeter:
    """Converts charged cycles into utilization figures.

    Args:
        cycles_per_second: modelled per-core clock rate.  The default of
            3.0e9 roughly matches the Xeon cores used in the paper's testbeds.
    """

    def __init__(self, cycles_per_second: float = 3.0e9) -> None:
        if cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")
        self.cycles_per_second = cycles_per_second

    def cores_used(self, cycles: float, interval_seconds: float) -> float:
        """Number of cores needed to spend ``cycles`` within ``interval_seconds``."""
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        return cycles / (self.cycles_per_second * interval_seconds)

    def max_packet_rate(self, cycles_per_packet: float) -> float:
        """Packets per second one core sustains at ``cycles_per_packet``."""
        if cycles_per_packet <= 0:
            raise ValueError("cycles_per_packet must be positive")
        return self.cycles_per_second / cycles_per_packet

    def max_bit_rate(self, cycles_per_packet: float, packet_size_bytes: int) -> float:
        """Bits per second one core sustains for ``packet_size_bytes`` packets."""
        if packet_size_bytes <= 0:
            raise ValueError("packet_size_bytes must be positive")
        return self.max_packet_rate(cycles_per_packet) * packet_size_bytes * 8


__all__ = [
    "BSR_LATENCY_CYCLES",
    "CostModel",
    "CpuMeter",
    "CycleAccount",
    "DEFAULT_COSTS",
    "DIV_LATENCY_CYCLES",
    "OperationCost",
    "QUEUE_STATS_COSTS",
]
