"""Unit and integration tests for the network simulator (Figure 19 substrate)."""

import pytest

from repro.core.model import Packet
from repro.netsim import (
    DropTailEcnQueue,
    Link,
    FabricConfig,
    FabricExperimentConfig,
    LeafSpineFabric,
    PFabricPortQueue,
    Simulator,
    approx_pfabric_queue_factory,
    run_fabric_experiment,
)


class TestSimulator:
    def test_event_ordering(self):
        simulator = Simulator()
        order = []
        simulator.schedule(50, lambda: order.append("b"))
        simulator.schedule(10, lambda: order.append("a"))
        simulator.schedule(50, lambda: order.append("c"))
        simulator.run()
        assert order == ["a", "b", "c"]
        assert simulator.now_ns == 50

    def test_until_horizon(self):
        simulator = Simulator()
        hits = []
        simulator.schedule(10, lambda: hits.append(1))
        simulator.schedule(100, lambda: hits.append(2))
        simulator.run(until_ns=50)
        assert hits == [1]
        assert simulator.pending_events == 1

    def test_cannot_schedule_in_past(self):
        simulator = Simulator()
        simulator.schedule(10, lambda: simulator.schedule_at(5, lambda: None))
        with pytest.raises(ValueError):
            simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule(-1, lambda: None)


class TestPortQueues:
    def test_droptail_marks_ecn_above_threshold(self):
        queue = DropTailEcnQueue(capacity_packets=10, ecn_threshold=2)
        packets = [Packet(flow_id=1) for _ in range(4)]
        for packet in packets:
            queue.enqueue(packet)
        assert not packets[0].metadata.get("ecn")
        assert packets[3].metadata.get("ecn")

    def test_droptail_drops_when_full(self):
        queue = DropTailEcnQueue(capacity_packets=2)
        assert queue.enqueue(Packet(flow_id=1))
        assert queue.enqueue(Packet(flow_id=1))
        assert not queue.enqueue(Packet(flow_id=1))
        assert queue.drops == 1

    def test_pfabric_serves_smallest_remaining_first(self):
        queue = PFabricPortQueue(capacity_packets=10)
        big = Packet(flow_id=1).annotate(remaining_bytes=1_000_000)
        small = Packet(flow_id=2).annotate(remaining_bytes=3_000)
        queue.enqueue(big)
        queue.enqueue(small)
        assert queue.dequeue() is small
        assert queue.dequeue() is big
        assert queue.dequeue() is None

    def test_pfabric_priority_dropping_evicts_largest(self):
        queue = PFabricPortQueue(capacity_packets=2)
        elephant = Packet(flow_id=1).annotate(remaining_bytes=9_000_000)
        medium = Packet(flow_id=2).annotate(remaining_bytes=60_000)
        mouse = Packet(flow_id=3).annotate(remaining_bytes=1_500)
        queue.enqueue(elephant)
        queue.enqueue(medium)
        assert queue.enqueue(mouse)  # evicts the elephant
        assert queue.drops == 1
        drained = [queue.dequeue(), queue.dequeue()]
        assert elephant not in drained
        assert mouse in drained and medium in drained

    def test_pfabric_rejects_arrival_larger_than_worst(self):
        queue = PFabricPortQueue(capacity_packets=1)
        queue.enqueue(Packet(flow_id=1).annotate(remaining_bytes=1_500))
        assert not queue.enqueue(Packet(flow_id=2).annotate(remaining_bytes=9_000_000))
        assert len(queue) == 1

    def test_pfabric_approx_variant_behaves(self):
        queue = PFabricPortQueue(
            capacity_packets=8, queue_factory=approx_pfabric_queue_factory
        )
        for remaining in (1_000_000, 3_000, 300_000):
            queue.enqueue(Packet(flow_id=1).annotate(remaining_bytes=remaining))
        drained = []
        while True:
            packet = queue.dequeue()
            if packet is None:
                break
            drained.append(packet.metadata["remaining_bytes"])
        assert sorted(drained) == [3_000, 300_000, 1_000_000]


class TestFabric:
    def test_leaf_spine_wiring(self):
        config = FabricConfig(num_leaves=2, num_spines=2, hosts_per_leaf=2)
        fabric = LeafSpineFabric(Simulator(), config, DropTailEcnQueue)
        assert len(fabric.hosts) == 4
        assert len(fabric.leaves) == 2
        # Each leaf connects to its hosts and every spine.
        assert len(fabric.leaves[0].links) == 2 + 2
        assert len(fabric.hosts[0].links) == 1

    def test_packet_crosses_fabric(self):
        simulator = Simulator()
        config = FabricConfig(num_leaves=2, num_spines=1, hosts_per_leaf=2)
        fabric = LeafSpineFabric(simulator, config, DropTailEcnQueue)
        received = []
        fabric.host(3).register_receiver(received.append)
        packet = Packet(flow_id=1, size_bytes=1500)
        packet.metadata.update({"dst": 3, "src": 0})
        fabric.host(0).uplink().send(packet)
        simulator.run()
        assert received and received[0] is packet

    def test_base_rtt_positive(self):
        config = FabricConfig()
        assert 0 < config.base_rtt_seconds() < 1e-3


class TestFabricExperiment:
    @pytest.fixture(scope="class")
    def small_config(self):
        return FabricExperimentConfig(
            fabric=FabricConfig(num_leaves=2, num_spines=2, hosts_per_leaf=2),
            num_flows=40,
            seed=3,
        )

    def test_all_flows_complete(self, small_config):
        result = run_fabric_experiment("pfabric", 0.4, small_config)
        assert result.completion_rate() == pytest.approx(1.0)

    def test_pfabric_beats_dctcp_for_small_flows(self, small_config):
        dctcp = run_fabric_experiment("dctcp", 0.6, small_config)
        pfabric = run_fabric_experiment("pfabric", 0.6, small_config)
        assert pfabric.small_flow_avg() < dctcp.small_flow_avg()

    def test_approximation_has_minimal_effect(self, small_config):
        exact = run_fabric_experiment("pfabric", 0.6, small_config)
        approx = run_fabric_experiment("pfabric_approx", 0.6, small_config)
        # The Figure 19 claim: swapping the switch priority queue for the
        # approximate queue leaves FCTs essentially unchanged.
        assert approx.small_flow_avg() == pytest.approx(
            exact.small_flow_avg(), rel=0.5
        )

    def test_unknown_scheme_rejected(self, small_config):
        with pytest.raises(ValueError):
            run_fabric_experiment("tcp-reno", 0.5, small_config)


class TestEventCancellation:
    def test_cancelled_event_never_fires(self):
        simulator = Simulator()
        hits = []
        handle = simulator.schedule(10, lambda: hits.append("a"))
        simulator.schedule(20, lambda: hits.append("b"))
        assert simulator.cancel(handle)
        simulator.run()
        assert hits == ["b"]
        assert handle.cancelled and not handle.active

    def test_cancel_after_fire_returns_false(self):
        simulator = Simulator()
        handle = simulator.schedule(5, lambda: None)
        simulator.run()
        assert not simulator.cancel(handle)
        assert not handle.cancel()

    def test_pending_events_excludes_cancelled(self):
        simulator = Simulator()
        handles = [simulator.schedule(10 + i, lambda: None) for i in range(4)]
        simulator.cancel(handles[0])
        simulator.cancel(handles[2])
        assert simulator.pending_events == 2

    def test_cancel_from_within_callback(self):
        simulator = Simulator()
        hits = []
        later = simulator.schedule(50, lambda: hits.append("later"))
        simulator.schedule(10, lambda: simulator.cancel(later))
        simulator.run()
        assert hits == []
        assert simulator.now_ns == 10

    def test_reprogramming_pattern(self):
        # Cancel + reschedule earlier: the classic timer re-arm.
        simulator = Simulator()
        hits = []
        handle = simulator.schedule(100, lambda: hits.append("late"))
        simulator.cancel(handle)
        simulator.schedule(10, lambda: hits.append("early"))
        simulator.run()
        assert hits == ["early"]

    def test_heavy_cancellation_compacts_heap(self):
        simulator = Simulator()
        handles = [simulator.schedule(1000 + i, lambda: None) for i in range(300)]
        for handle in handles[:299]:
            simulator.cancel(handle)
        assert simulator.pending_events == 1
        assert simulator.run() == 1

    def test_fired_handle_is_not_cancelled(self):
        simulator = Simulator()
        handle = simulator.schedule(5, lambda: None)
        simulator.run()
        assert handle.fired
        assert not handle.cancelled
        assert not handle.active
        cancelled = simulator.schedule(5, lambda: None)
        simulator.cancel(cancelled)
        simulator.run()
        assert cancelled.cancelled and not cancelled.fired

    def test_handle_cancel_maintains_simulator_accounting(self):
        # Cancelling through the handle's own API (not Simulator.cancel)
        # must keep pending_events exact and still trigger compaction.
        simulator = Simulator()
        handles = [simulator.schedule(1000 + i, lambda: None) for i in range(300)]
        for handle in handles[:299]:
            assert handle.cancel()
        assert simulator.pending_events == 1
        assert simulator.run() == 1


class TestShardedPortQueue:
    def _port(self, num_shards=4, capacity=16):
        from repro.runtime import ShardedPortQueue

        return ShardedPortQueue(
            num_shards,
            lambda shard: DropTailEcnQueue(capacity_packets=capacity),
        )

    def test_routes_by_flow_and_counts(self):
        port = self._port()
        packets = [Packet(flow_id=flow % 8) for flow in range(32)]
        for packet in packets:
            assert port.enqueue(packet)
        assert len(port) == 32
        assert port.enqueued == 32
        # Same flow always lands in the same sub-queue.
        shard_of = {}
        for packet in packets:
            shard = port.shard_for(packet)
            assert shard_of.setdefault(packet.flow_id, shard) == shard

    def test_dequeue_round_robins_nonempty_shards(self):
        port = self._port()
        for flow in range(8):
            port.enqueue_batch([Packet(flow_id=flow) for _ in range(4)])
        occupied = [shard for shard, queue in enumerate(port.shards) if len(queue)]
        pulled = port.dequeue_batch(len(port))
        assert len(pulled) == 32
        assert len(port) == 0
        # A single pull visits every occupied sub-queue (per-pass quotas),
        # rather than draining one ring fully before touching the next.
        quota = max(1, 32 // port.num_shards)
        first_pass = [port.shard_for(packet) for packet in pulled[: quota * len(occupied)]]
        assert set(first_pass) == set(occupied)

    def test_per_flow_fifo_within_port(self):
        port = self._port()
        for sequence in range(6):
            for flow in range(6):
                port.enqueue(Packet(flow_id=flow, metadata={"sequence": sequence}))
        drained = port.dequeue_batch(len(port))
        per_flow = {}
        for packet in drained:
            per_flow.setdefault(packet.flow_id, []).append(packet.metadata["sequence"])
        for flow, sequences in per_flow.items():
            assert sequences == sorted(sequences), f"flow {flow} reordered"

    def test_drops_aggregate_from_subqueues(self):
        port = self._port(num_shards=2, capacity=2)
        accepted = port.enqueue_batch([Packet(flow_id=1) for _ in range(5)])
        assert accepted < 5
        assert port.drops == 5 - accepted

    def test_behind_link_burst_pull(self):
        simulator = Simulator()
        delivered = []
        port = self._port()
        link = Link(
            simulator,
            rate_bps=10e9,
            propagation_ns=100,
            deliver=delivered.append,
            queue=port,
            burst_packets=8,
        )
        for flow in range(24):
            link.send(Packet(flow_id=flow % 6, size_bytes=1500))
        simulator.run()
        assert len(delivered) == 24
        assert link.transmitted_packets == 24
