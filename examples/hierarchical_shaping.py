#!/usr/bin/env python3
"""The Figure 7 / Figure 8 walkthrough: nested rate limits with one shaper.

A leaf policy is limited to 7 Mbps inside a node limited to 10 Mbps, and the
aggregate is paced at 20 Mbps.  Eiffel enforces all three constraints with a
single timestamp-indexed priority queue (the decoupled shaper): each packet
re-enters the shaper once per rate limit on its path, and the example prints
that journey step by step.

Run:  python examples/hierarchical_shaping.py
"""

from repro.core.model import (
    DecoupledShaper,
    Packet,
    RateLimit,
    ShaperChain,
    ShapingTransaction,
)


def main() -> None:
    shaper = DecoupledShaper(horizon_ns=10_000_000_000, granularity_ns=100_000)
    chain = ShaperChain(shaper)

    leaf_limit = ShapingTransaction("leaf (7 Mbps)", RateLimit(7e6))
    node_limit = ShapingTransaction("node (10 Mbps)", RateLimit(10e6))
    pacing = ShapingTransaction("root pacing (20 Mbps)", RateLimit(20e6))

    journey: list[tuple[int, str, int]] = []
    delivered: list[tuple[int, int]] = []

    stages = [
        (lambda p, now: journey.append((p.packet_id, "enqueue PQ2", now)), node_limit),
        (lambda p, now: journey.append((p.packet_id, "enqueue PQ1", now)), pacing),
    ]

    def deliver(packet: Packet, now: int) -> None:
        delivered.append((packet.packet_id, now))

    print("Sending 6 MTU packets through the Figure 7 hierarchy...")
    for _ in range(6):
        packet = Packet(flow_id=42, size_bytes=1500)
        continuation = chain.build(stages, deliver)
        send_at = leaf_limit.stamp(packet, now_ns=0)
        journey.append((packet.packet_id, "enqueue shaper @7Mbps", send_at))
        shaper.schedule(packet, send_at, continuation)

    # Advance time in 1 ms steps, releasing whatever is due.
    for step_ms in range(0, 20):
        shaper.release_due(now_ns=step_ms * 1_000_000)

    print("\nPer-packet journey (packet, step, time_ms):")
    for packet_id, step, time_ns in sorted(journey, key=lambda x: (x[0], x[2])):
        print(f"  pkt {packet_id:3d}  {step:24s} t={time_ns / 1e6:7.3f} ms")

    print("\nDelivery times (paced by the tightest constraint, 7 Mbps ≈ 1.7 ms/pkt):")
    previous = None
    for packet_id, time_ns in delivered:
        gap = "" if previous is None else f"  (+{(time_ns - previous) / 1e6:.3f} ms)"
        print(f"  pkt {packet_id:3d} delivered at t={time_ns / 1e6:7.3f} ms{gap}")
        previous = time_ns


if __name__ == "__main__":
    main()
