"""Differential equivalence of the execution backends.

The backend refactor's load-bearing claim: for any statically decomposable
configuration, the parallel backends (per-shard replay on private virtual
clocks) produce **bit-identical modelled results** to the simulated backend
(all shards multiplexed on one clock).  These tests drive the same timed
workload through both and compare everything observable — per-flow packet
sequences, departure timestamps, cycle accounts, queue/mailbox counters.

The process backend forks real OS processes per example, so the Hypothesis
examples are few and small; the fixed multi-shard cases carry the breadth.
"""

import copy

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.model.packet import Packet
from repro.core.queues import BucketSpec, HierarchicalFFSQueue
from repro.runtime import ShardedRuntime

RATE_BPS = 10e9
QUANTUM_NS = 10_000


def _run_workload(backend, bursts, num_shards, **kwargs):
    """Drive one timed workload on a fresh runtime; return its observables."""
    runtime = ShardedRuntime(
        num_shards,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        gc_interval_packets=None,  # keep the simulated run decomposable too
        backend=backend,
        **kwargs,
    )
    for when_ns, packets in bursts:
        runtime.submit_at(when_ns, [copy.deepcopy(packet) for packet in packets])
    runtime.run()
    telemetry = runtime.telemetry()
    flows = {}
    for departure_ns, packet in runtime.transmit_log:
        flows.setdefault(packet.flow_id, []).append(
            (packet.packet_id, packet.arrival_ns, departure_ns)
        )
    return {
        "flows": flows,
        "transmitted": telemetry.transmitted,
        "total_cycles": telemetry.total_cycles,
        "bottleneck_cycles": telemetry.bottleneck_cycles,
        "queue_stats": telemetry.queue_stats.as_dict(),
        "shards": [shard.as_dict() for shard in telemetry.shards],
        "drops": runtime.ingress_drops,
    }


def _assert_equivalent(reference, candidate):
    assert candidate["flows"] == reference["flows"]
    for key in (
        "transmitted",
        "total_cycles",
        "bottleneck_cycles",
        "queue_stats",
        "shards",
        "drops",
    ):
        assert candidate[key] == reference[key], f"{key} diverged"


def _burst_workload(num_bursts, burst_size, num_flows, gap_ns):
    bursts = []
    when_ns = 0
    for burst in range(num_bursts):
        packets = [
            Packet(flow_id=(burst * burst_size + i) % num_flows, size_bytes=1500)
            for i in range(burst_size)
        ]
        bursts.append((when_ns, packets))
        when_ns += gap_ns
    return bursts


class TestFixedDifferential:
    def test_four_shards_all_backends_identical(self):
        bursts = _burst_workload(
            num_bursts=30, burst_size=64, num_flows=37, gap_ns=7_000
        )
        reference = _run_workload("simulated", bursts, num_shards=4)
        assert reference["transmitted"] == 30 * 64
        _assert_equivalent(reference, _run_workload("process", bursts, num_shards=4))
        _assert_equivalent(reference, _run_workload("thread", bursts, num_shards=4))

    def test_equal_timestamp_ties_preserved(self):
        # Several bursts at the *same* instant, interleaved with bursts one
        # quantum apart: the arrival-beats-tick tie rule and the submission
        # order at equal instants must survive per-shard replay.
        bursts = []
        for when_ns in (0, 0, 0, QUANTUM_NS, QUANTUM_NS, 3 * QUANTUM_NS):
            bursts.append(
                (when_ns, [Packet(flow_id=i % 11, size_bytes=700) for i in range(32)])
            )
        reference = _run_workload("simulated", bursts, num_shards=3)
        _assert_equivalent(reference, _run_workload("process", bursts, num_shards=3))
        _assert_equivalent(reference, _run_workload("thread", bursts, num_shards=3))

    def test_bounded_mailbox_drops_identically(self):
        bursts = _burst_workload(num_bursts=6, burst_size=48, num_flows=5, gap_ns=2_000)
        kwargs = dict(mailbox_capacity=16, ingest_per_quantum=8)
        reference = _run_workload("simulated", bursts, num_shards=2, **kwargs)
        assert reference["drops"] > 0  # the workload genuinely overflows
        _assert_equivalent(
            reference, _run_workload("process", bursts, num_shards=2, **kwargs)
        )

    def test_alternate_queue_and_per_flow_rates(self):
        # A non-default queue factory (closure — inherited by fork, never
        # pickled) and heterogeneous pacing rates cross the seam intact.
        def factory(spec):
            return HierarchicalFFSQueue(
                BucketSpec(num_buckets=spec.num_buckets, granularity=spec.granularity)
            )

        kwargs = dict(
            queue_factory=factory,
            flow_rates={flow: (1 + flow % 3) * 2.5e9 for flow in range(17)},
        )
        bursts = _burst_workload(num_bursts=12, burst_size=32, num_flows=17, gap_ns=5_000)
        reference = _run_workload("simulated", bursts, num_shards=2, **kwargs)
        _assert_equivalent(
            reference, _run_workload("process", bursts, num_shards=2, **kwargs)
        )


class TestHypothesisDifferential:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        bursts=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200_000),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=12),  # flow_id
                        st.integers(min_value=64, max_value=9000),  # size
                    ),
                    min_size=1,
                    max_size=24,
                ),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_single_shard_process_matches_simulated(self, bursts):
        workload = [
            (when_ns, [Packet(flow_id=f, size_bytes=s) for f, s in specs])
            for when_ns, specs in bursts
        ]
        reference = _run_workload("simulated", workload, num_shards=1)
        _assert_equivalent(reference, _run_workload("process", workload, num_shards=1))

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_shards=st.integers(min_value=1, max_value=4),
        bursts=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=150_000),
                st.lists(
                    st.integers(min_value=0, max_value=30),  # flow ids
                    min_size=1,
                    max_size=32,
                ),
            ),
            min_size=1,
            max_size=12,
        ),
    )
    def test_multi_shard_thread_matches_simulated(self, num_shards, bursts):
        workload = [
            (when_ns, [Packet(flow_id=f, size_bytes=1500) for f in flows])
            for when_ns, flows in bursts
        ]
        reference = _run_workload("simulated", workload, num_shards=num_shards)
        _assert_equivalent(
            reference, _run_workload("thread", workload, num_shards=num_shards)
        )
