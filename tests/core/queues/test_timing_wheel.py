"""Unit tests for the timing wheel (Carousel substrate)."""

import pytest

from repro.core.queues import HierarchicalTimingWheel, TimingWheel


class TestTimingWheel:
    def test_releases_due_packets_in_time_order_per_slot(self):
        wheel = TimingWheel(num_slots=100, granularity=10)
        wheel.insert(35, "a")
        wheel.insert(15, "b")
        wheel.insert(95, "c")
        released = wheel.advance_to(50)
        assert [item for _, item in released] == ["b", "a"]
        assert len(wheel) == 1

    def test_packets_beyond_horizon_clamped_to_last_slot(self):
        wheel = TimingWheel(num_slots=10, granularity=1)
        wheel.insert(1000, "far")
        assert wheel.overflow_insertions == 1
        released = wheel.advance_to(9)
        assert [item for _, item in released] == ["far"]

    def test_stale_packets_released_immediately(self):
        wheel = TimingWheel(num_slots=10, granularity=1, start_time=100)
        wheel.insert(50, "late-arrival")
        assert wheel.stale_insertions == 1
        released = wheel.advance_to(100)
        assert [item for _, item in released] == ["late-arrival"]

    def test_out_of_order_insertions_within_one_slot_released_when_due(self):
        # Regression: advance_to used to stop at the first slot-front entry
        # with timestamp > now, hiding later-inserted same-slot entries that
        # were already due.
        wheel = TimingWheel(num_slots=100, granularity=10)
        wheel.insert(109, "late")
        wheel.insert(101, "early")  # same slot, inserted after "late"
        released = wheel.advance_to(105)
        assert [item for _, item in released] == ["early"]
        assert len(wheel) == 1
        # The not-yet-due entry is still released once its time comes.
        released = wheel.advance_to(110)
        assert [item for _, item in released] == ["late"]
        assert wheel.empty

    def test_not_due_entries_keep_arrival_order_within_slot(self):
        wheel = TimingWheel(num_slots=10, granularity=10)
        wheel.insert(57, "b")
        wheel.insert(51, "a")
        wheel.insert(59, "c")
        assert wheel.advance_to(53) == [(51, "a")]
        assert wheel.advance_to(59) == [(57, "b"), (59, "c")]

    def test_insert_batch_counts_and_releases(self):
        wheel = TimingWheel(num_slots=100, granularity=10)
        assert wheel.insert_batch([(15, "a"), (35, "b")]) == 2
        assert wheel.insertions == 2
        assert [item for _, item in wheel.advance_to(40)] == ["a", "b"]

    def test_slot_advances_counted_even_when_empty(self):
        # This per-slot visiting cost is Carousel's polling overhead.
        wheel = TimingWheel(num_slots=1000, granularity=1)
        wheel.advance_to(500)
        assert wheel.slot_advances >= 500

    def test_next_due_time_scans(self):
        wheel = TimingWheel(num_slots=50, granularity=2)
        assert wheel.next_due_time() is None
        wheel.insert(44, "x")
        wheel.insert(12, "y")
        assert wheel.next_due_time() == 12

    def test_no_backwards_advance(self):
        wheel = TimingWheel(num_slots=10, granularity=1, start_time=50)
        wheel.insert(55, "x")
        assert wheel.advance_to(40) == []
        assert len(wheel) == 1

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            TimingWheel(num_slots=0)
        with pytest.raises(ValueError):
            TimingWheel(num_slots=10, granularity=0)

    def test_does_not_release_future_packets_in_visited_slot(self):
        # A slot visited during advance may contain a packet one wheel-turn
        # ahead; it must stay queued.
        wheel = TimingWheel(num_slots=10, granularity=1)
        wheel.insert(3, "due")
        wheel.advance_to(5)
        wheel.insert(13, "next-turn")  # same slot index as 3
        released = wheel.advance_to(8)
        assert released == []
        released = wheel.advance_to(13)
        assert [item for _, item in released] == ["next-turn"]

    def test_peek_slots(self):
        wheel = TimingWheel(num_slots=10, granularity=1)
        wheel.insert(2, "a")
        wheel.insert(7, "b")
        assert sorted(wheel.peek_slots()) == [2, 7]


class TestHierarchicalTimingWheel:
    def test_insert_beyond_inner_horizon_goes_to_outer_level(self):
        wheel = HierarchicalTimingWheel(slots_per_level=10, granularity=1, levels=2)
        wheel.insert(5, "inner")
        wheel.insert(55, "outer")
        assert len(wheel.levels[0]) == 1
        assert len(wheel.levels[1]) == 1

    def test_release_across_levels(self):
        wheel = HierarchicalTimingWheel(slots_per_level=10, granularity=1, levels=2)
        wheel.insert(5, "inner")
        wheel.insert(55, "outer")
        first = wheel.advance_to(10)
        assert [item for _, item in first] == ["inner"]
        second = wheel.advance_to(60)
        assert [item for _, item in second] == ["outer"]
        assert wheel.empty

    def test_total_horizon_larger_than_single_level(self):
        flat = TimingWheel(num_slots=10, granularity=1)
        hierarchical = HierarchicalTimingWheel(slots_per_level=10, granularity=1, levels=3)
        assert hierarchical.horizon > flat.horizon

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            HierarchicalTimingWheel(slots_per_level=10, levels=0)
