"""Unit tests for the timestamp pacing policy (Use Case 1 core)."""

import pytest

from repro.core.model import Packet
from repro.core.policies import TimestampPacingScheduler

NS_PER_SEC = 1_000_000_000


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimestampPacingScheduler(horizon_ns=0)
        with pytest.raises(ValueError):
            TimestampPacingScheduler(num_buckets=0)
        scheduler = TimestampPacingScheduler()
        with pytest.raises(ValueError):
            scheduler.set_flow_rate(1, 0)

    def test_flow_rate_lookup(self):
        scheduler = TimestampPacingScheduler(default_rate_bps=1e9)
        scheduler.set_flow_rate(7, 5e6)
        assert scheduler.flow_rate(7) == 5e6
        assert scheduler.flow_rate(8) == 1e9


class TestShapingBehaviour:
    def test_unpaced_flow_released_immediately(self):
        scheduler = TimestampPacingScheduler()
        scheduler.enqueue(Packet(flow_id=1), now_ns=100)
        assert scheduler.dequeue(now_ns=100) is not None

    def test_paced_flow_spacing(self):
        scheduler = TimestampPacingScheduler()
        # 12 Mbps and 1500 B packets -> 1 ms per packet.
        scheduler.set_flow_rate(1, 12e6)
        for _ in range(5):
            scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        assert scheduler.dequeue(now_ns=0) is not None
        assert scheduler.dequeue(now_ns=0) is None  # second packet is 1 ms away
        assert scheduler.dequeue(now_ns=1_100_000) is not None
        remaining = scheduler.dequeue_due(now_ns=10_000_000)
        assert len(remaining) == 3

    def test_achieved_rate_close_to_limit(self):
        scheduler = TimestampPacingScheduler()
        rate = 100e6
        scheduler.set_flow_rate(1, rate)
        packet_bytes = 1500
        count = 200
        for _ in range(count):
            scheduler.enqueue(Packet(flow_id=1, size_bytes=packet_bytes), now_ns=0)
        # Drain with a fine-grained clock and record the last release time.
        released = 0
        now = 0
        last_release = 0
        step = 10_000
        while released < count and now < NS_PER_SEC:
            packet = scheduler.dequeue(now_ns=now)
            if packet is None:
                now += step
                continue
            released += 1
            last_release = now
        assert released == count
        achieved_bps = count * packet_bytes * 8 / (last_release / 1e9)
        assert achieved_bps == pytest.approx(rate, rel=0.1)

    def test_per_flow_isolation(self):
        scheduler = TimestampPacingScheduler()
        scheduler.set_flow_rate(1, 1e6)  # slow
        scheduler.set_flow_rate(2, 1e9)  # fast
        for _ in range(3):
            scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
            scheduler.enqueue(Packet(flow_id=2, size_bytes=1500), now_ns=0)
        early = scheduler.dequeue_due(now_ns=100_000)
        # The fast flow's packets (and the slow flow's first) are out early.
        fast_released = sum(1 for p in early if p.flow_id == 2)
        slow_released = sum(1 for p in early if p.flow_id == 1)
        assert fast_released == 3
        assert slow_released <= 1

    def test_next_event_matches_head_timestamp(self):
        scheduler = TimestampPacingScheduler()
        scheduler.set_flow_rate(1, 12e6)
        assert scheduler.next_event_ns() is None
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        scheduler.dequeue(now_ns=0)
        event = scheduler.next_event_ns()
        assert event == pytest.approx(1_000_000, rel=0.01)

    def test_garbage_collect(self):
        scheduler = TimestampPacingScheduler()
        scheduler.set_flow_rate(1, 1e6)
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        scheduler.dequeue(now_ns=0)
        assert scheduler.flow_garbage_collect([1]) == 1
        assert scheduler.flow_garbage_collect([1]) == 0
