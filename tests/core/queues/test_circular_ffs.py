"""Unit tests for the circular hierarchical FFS queue (cFFS)."""

import random

import pytest

from repro.core.queues import BucketSpec, CircularFFSQueue, EmptyQueueError


def make_queue(num_buckets=64, granularity=1, base=0, **kwargs):
    return CircularFFSQueue(
        BucketSpec(num_buckets=num_buckets, granularity=granularity, base_priority=base),
        **kwargs,
    )


class TestRanges:
    def test_initial_ranges(self):
        queue = make_queue(num_buckets=10, granularity=5, base=100)
        assert queue.primary_range == (100, 150)
        assert queue.secondary_range == (150, 200)
        assert queue.window_span == 50

    def test_rotation_advances_head(self):
        queue = make_queue(num_buckets=4, granularity=1, base=0)
        queue.enqueue(6, "secondary")  # falls in the secondary window [4, 8)
        assert queue.extract_min() == (6, "secondary")
        assert queue.h_index == 4
        assert queue.stats.rotations == 1


class TestOrdering:
    def test_orders_across_windows(self):
        queue = make_queue(num_buckets=8)
        queue.enqueue(12, "second")  # secondary window
        queue.enqueue(3, "first")  # primary window
        assert queue.extract_min() == (3, "first")
        assert queue.extract_min() == (12, "second")

    def test_moving_range_many_rotations(self):
        queue = make_queue(num_buckets=16)
        # Enqueue/dequeue in waves so the range keeps moving far beyond the
        # original window.
        now = 0
        for wave in range(50):
            for offset in (1, 5, 9):
                queue.enqueue(now + offset, (wave, offset))
            drained = [queue.extract_min() for _ in range(3)]
            assert [p for p, _ in drained] == sorted(p for p, _ in drained)
            now += 16
        assert queue.stats.rotations > 10

    def test_random_within_two_windows_fully_sorted(self):
        rng = random.Random(5)
        queue = make_queue(num_buckets=128)
        priorities = [rng.randrange(0, 256) for _ in range(1000)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(priorities)

    def test_overflow_bucket_loses_fine_order_but_keeps_elements(self):
        queue = make_queue(num_buckets=4)
        # Horizon is 4+4=8; priorities >= 8 overflow into the last bucket.
        queue.enqueue(100, "way-out-1")
        queue.enqueue(90, "way-out-2")
        queue.enqueue(1, "now")
        assert queue.stats.overflow_enqueues == 2
        drained = list(queue.extract_all())
        assert drained[0] == (1, "now")
        assert {item for _, item in drained[1:]} == {"way-out-1", "way-out-2"}


class TestStaleAndErrors:
    def test_stale_priority_clamped_to_head(self):
        queue = make_queue(num_buckets=8, base=100)
        queue.enqueue(50, "stale")
        queue.enqueue(103, "fresh")
        priority, item = queue.extract_min()
        assert item == "stale"
        assert priority == 50  # original priority is preserved in the entry

    def test_stale_priority_rejected_when_disallowed(self):
        queue = make_queue(num_buckets=8, base=100, allow_stale=False)
        with pytest.raises(ValueError):
            queue.enqueue(50, "stale")

    def test_empty_queue_raises(self):
        queue = make_queue()
        with pytest.raises(EmptyQueueError):
            queue.extract_min()
        with pytest.raises(EmptyQueueError):
            queue.peek_min()


class TestExtractDue:
    def test_extract_due_releases_only_past(self):
        queue = make_queue(num_buckets=32)
        for timestamp in (5, 10, 15, 20):
            queue.enqueue(timestamp, f"t{timestamp}")
        released = queue.extract_due(now=12)
        assert [p for p, _ in released] == [5, 10]
        assert len(queue) == 2

    def test_extract_due_empty(self):
        queue = make_queue()
        assert queue.extract_due(now=100) == []


class TestRotationRebucketsOverflow:
    def test_beyond_horizon_rank_not_extracted_before_nearer_post_rotation_ranks(self):
        # Regression: the overflow (last) bucket of the incoming primary
        # window used to be dequeued as if its far-future ranks were due.
        queue = make_queue(num_buckets=4)  # primary [0,4), secondary [4,8)
        queue.enqueue(100, "far-future")  # beyond both windows: overflow
        queue.enqueue(1, "due-now")
        assert queue.extract_min() == (1, "due-now")
        queue.enqueue(5, "rotates")  # in the secondary window: rotates on pop
        assert queue.extract_min() == (5, "rotates")
        # Post-rotation the windows are [4, 8) / [8, 12); a rank enqueued now
        # into the new secondary window must come out before the overflow.
        queue.enqueue(9, "nearer")
        assert queue.extract_min() == (9, "nearer")
        assert queue.extract_min() == (100, "far-future")

    def test_rotation_keeps_overflow_order_bounded_to_one_window(self):
        queue = make_queue(num_buckets=4)
        for priority in (20, 9, 13, 1):
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == [1, 9, 13, 20]

    def test_extract_due_does_not_release_far_future_overflow(self):
        queue = make_queue(num_buckets=4)
        queue.enqueue(2, "due")
        queue.enqueue(50, "far-future")
        assert [item for _p, item in queue.extract_due(now=10)] == ["due"]
        assert len(queue) == 1

    def test_legit_last_bucket_entries_stay_after_rotation(self):
        queue = make_queue(num_buckets=4)
        queue.enqueue(7, "last-bucket-of-secondary")  # secondary bucket 3
        queue.enqueue(0, "head")
        assert queue.extract_min() == (0, "head")
        assert queue.extract_min() == (7, "last-bucket-of-secondary")


class TestRemove:
    def test_remove_from_primary(self):
        queue = make_queue(num_buckets=16)
        token = object()
        queue.enqueue(5, token)
        queue.enqueue(5, "other")
        assert queue.remove(5, token)
        assert len(queue) == 1

    def test_remove_from_secondary(self):
        queue = make_queue(num_buckets=16)
        token = object()
        queue.enqueue(20, token)  # secondary window [16, 32)
        assert queue.remove(20, token)
        assert queue.empty

    def test_remove_missing(self):
        queue = make_queue(num_buckets=16)
        assert not queue.remove(3, "ghost")

    def test_remove_overflow_item_before_rotation(self):
        queue = make_queue(num_buckets=4)
        token = object()
        queue.enqueue(100, token)  # beyond both windows: overflow bucket
        assert queue.remove(100, token)
        assert queue.empty

    def test_remove_overflow_item_after_rotation(self):
        # Regression: after a rotation the overflow entries live in (or were
        # re-dispatched from) the *primary* window; remove() used to look
        # only in the secondary's last bucket and report a present item as
        # missing.
        queue = make_queue(num_buckets=4)
        token = object()
        queue.enqueue(100, token)  # beyond both windows
        queue.enqueue(1, "drain-me")
        assert queue.extract_min() == (1, "drain-me")
        queue.enqueue(6, "also-present")  # forces a rotation on next extract
        assert queue.extract_min() == (6, "also-present")
        assert queue.remove(100, token)
        assert queue.empty

    def test_remove_after_rotation_via_drains_past_both_windows(self):
        # The ISSUE scenario: enqueue past both windows, rotate via drains,
        # then remove the far item.
        queue = make_queue(num_buckets=8)  # primary [0,8), secondary [8,16)
        token = object()
        queue.enqueue(40, token)  # past both windows
        for priority in (1, 9):
            queue.enqueue(priority, priority)
        assert queue.extract_min()[0] == 1  # drains primary
        assert queue.extract_min()[0] == 9  # rotates, drains next window
        assert queue.remove(40, token)
        assert len(queue) == 0
