"""Pickle round-trips for the slotted counter dataclasses.

Every ``CounterStatsMixin`` dataclass opts into ``slots=True`` for hot-path
attribute speed, which forfeits the ``__dict__``-based default pickle path.
The mixin pins an explicit wire format instead (``__getstate__`` returns the
field dict, ``__setstate__`` reassigns it) because the parallel execution
backends ship these snapshots across process boundaries in every
:class:`~repro.runtime.backend.ShardResult`.  These tests round-trip each
class with non-default values so any future field addition or slots change
that silently breaks the wire format fails loudly.
"""

import pickle

import pytest

from repro.core.queues import QueueStats
from repro.runtime import (
    FlowStateStats,
    IngressStats,
    LogHistogram,
    MailboxStats,
    ShardWorkerStats,
    ShardingStats,
    StealStats,
)
from repro.runtime.stealing import StealChannelStats

ALL_STATS_CLASSES = [
    QueueStats,
    MailboxStats,
    ShardWorkerStats,
    ShardingStats,
    StealStats,
    IngressStats,
    StealChannelStats,
    FlowStateStats,
]


def _populated(cls):
    """An instance with a distinct non-default value in every field."""
    instance = cls()
    for index, (name, spec) in enumerate(instance.__dataclass_fields__.items()):
        value = 7 + index if isinstance(spec.default, int) else 0.5 + index
        setattr(instance, name, value)
    return instance


@pytest.mark.parametrize("cls", ALL_STATS_CLASSES, ids=lambda cls: cls.__name__)
class TestCounterStatsPickle:
    def test_round_trip_preserves_every_field(self, cls):
        original = _populated(cls)
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is cls
        assert clone.as_dict() == original.as_dict()
        assert clone.as_dict() != cls().as_dict()  # the values were non-default

    def test_round_trip_of_defaults(self, cls):
        clone = pickle.loads(pickle.dumps(cls()))
        assert clone.as_dict() == cls().as_dict()

    def test_clone_is_independent(self, cls):
        original = _populated(cls)
        clone = pickle.loads(pickle.dumps(original))
        first_field = next(iter(original.__dataclass_fields__))
        setattr(clone, first_field, getattr(clone, first_field) + 1)
        assert clone.as_dict() != original.as_dict()

    def test_instances_stay_dictless(self, cls):
        # The explicit pickle support must not have reintroduced __dict__:
        # one stats object per queue/shard sits on the hot path.
        original = _populated(cls)
        clone = pickle.loads(pickle.dumps(original))
        for instance in (original, clone):
            with pytest.raises(AttributeError):
                instance.__dict__

    def test_getstate_is_the_field_dict(self, cls):
        original = _populated(cls)
        assert original.__getstate__() == original.as_dict()


class TestLogHistogramPickle:
    """The histogram follows the same wire-format discipline as the counter
    dataclasses — sparse explicit state, no ``__dict__`` — because parallel
    backends ship one per seam in every :class:`ShardResult`."""

    def _populated(self) -> LogHistogram:
        hist = LogHistogram()
        for value in (0, 1, 127, 128, 1_000, 123_456, 10**9, 10**12):
            hist.record(value)
        return hist

    def test_round_trip_preserves_everything(self):
        original = self._populated()
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is LogHistogram
        assert clone == original
        assert clone.as_dict() == original.as_dict()
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert clone.quantile(q) == original.quantile(q)

    def test_round_trip_of_empty(self):
        clone = pickle.loads(pickle.dumps(LogHistogram()))
        assert clone == LogHistogram()
        assert clone.count == 0

    def test_round_trip_preserves_precision(self):
        original = LogHistogram(precision=4)
        original.record(12_345)
        clone = pickle.loads(pickle.dumps(original))
        assert clone.precision == 4
        assert clone == original

    def test_clone_is_independent(self):
        original = self._populated()
        clone = pickle.loads(pickle.dumps(original))
        clone.record(42)
        assert clone != original
        assert clone.count == original.count + 1

    def test_instances_stay_dictless(self):
        original = self._populated()
        clone = pickle.loads(pickle.dumps(original))
        for instance in (original, clone):
            with pytest.raises(AttributeError):
                instance.__dict__

    def test_wire_format_is_sparse(self):
        # 8 recorded values must not ship the whole counts array.
        state = self._populated().__getstate__()
        assert set(state) == {
            "precision", "count", "sum", "min_value", "max_value", "counts",
        }
        assert len(state["counts"]) <= 8
