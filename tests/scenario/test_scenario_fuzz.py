"""Runtime-wide scenario fuzzing: random valid specs vs the invariant net.

This is the payoff of the declarative layer: Hypothesis draws whole-system
configurations — shards × sharding policy × queue type × stealing ×
rebalancing × ingress cores × admission × pacing × traffic pattern — and
every drawn scenario runs end-to-end against the global invariants no
configuration may break:

* **packet conservation** — transmitted + dropped == offered, and the
  delivered packet-id multiset never exceeds the offered one;
* **per-flow FIFO** — each flow's departures are (a subsequence of, equal
  to when loss-free) its arrivals, in order, across shards, steals,
  migrations and RX lanes;
* **no stranded state** — after drain: no packets anywhere in the pipeline,
  no flow-table slot claiming in-flight packets, no flow on loan, no open
  or held lease, no RX core parked on backpressure.

These are exactly the `[assertions]` defaults of every spec, so the test
body is simply "run it and check" — the compiler's assertion evaluator is
the oracle, and a failing example shrinks to a minimal broken configuration.

``SCENARIO_FUZZ_EXAMPLES`` caps the example count (CI sets a small cap; the
default stays modest because every example runs a full workload).
"""

import os

from hypothesis import HealthCheck, given, settings

from repro.scenario import ScenarioAssertionError, compile_scenario, run_scenario
from repro.scenario.fuzz import parallel_backend_specs, scenario_specs

MAX_EXAMPLES = int(os.environ.get("SCENARIO_FUZZ_EXAMPLES", "25"))

#: Scenario runs are whole-system simulations: seconds-scale examples are
#: expected, and the strategy's constructive validity means no filtering.
FUZZ_SETTINGS = dict(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**FUZZ_SETTINGS)
@given(spec=scenario_specs())
def test_random_scenarios_uphold_runtime_invariants(spec):
    result = run_scenario(spec, check=False)
    if result.failures:
        raise ScenarioAssertionError(spec.name, result.failures)
    # The ledgers the oracle judged must describe the whole workload.
    assert result.offered == spec.traffic.total_packets
    assert sum(len(ids) for ids in result.offered_by_flow.values()) == result.offered


def _normalized_ledgers(result):
    """Re-key packet ids as per-run offer ordinals.

    ``Packet.packet_id`` is a process-global counter, so raw ids differ
    between two runs of the same spec; what determinism pins is *which*
    offered packet (by position) went where.
    """
    ordinal = {
        packet_id: index
        for index, packet_id in enumerate(
            pid for ids in result.offered_by_flow.values() for pid in ids
        )
    }
    offered = {
        flow: [ordinal[pid] for pid in ids]
        for flow, ids in result.offered_by_flow.items()
    }
    delivered = {
        flow: [ordinal[pid] for pid in ids]
        for flow, ids in result.delivered_by_flow.items()
    }
    return offered, delivered


@settings(**FUZZ_SETTINGS)
@given(spec=scenario_specs())
def test_random_scenarios_are_deterministic_from_the_seed(spec):
    """One seed pins the whole run: replaying a spec replays its result."""
    first = run_scenario(spec, check=False)
    second = run_scenario(spec, check=False)
    assert _normalized_ledgers(first) == _normalized_ledgers(second)
    assert first.transmitted == second.transmitted
    assert first.dropped == second.dropped
    assert (
        first.telemetry.bottleneck_cycles == second.telemetry.bottleneck_cycles
    )


@settings(max_examples=max(1, MAX_EXAMPLES // 5), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=parallel_backend_specs())
def test_parallel_backend_scenarios_uphold_invariants(spec):
    """The statically decomposable subset holds the same net on real cores.

    Kept to thread-backend draws by overriding the spec would defeat the
    point; instead the strategy draws both backends and the example budget
    stays small — each process-backend example forks real workers.
    """
    result = run_scenario(spec, check=False)
    if result.failures:
        raise ScenarioAssertionError(spec.name, result.failures)


def test_fuzz_strategy_only_generates_valid_specs():
    """Compiling (not just validating) a sample of draws must never raise."""
    from hypothesis import find

    # ``find`` with a trivial predicate pulls a shrunk draw through the
    # whole strategy machinery — a cheap end-to-end sanity check that the
    # strategy's constructive validity matches validate()'s rules.
    spec = find(scenario_specs(), lambda _spec: True)
    compiled = compile_scenario(spec)
    assert compiled.spec is spec
