#!/usr/bin/env python3
"""The Figure 20 guide in action: pick a priority queue per workload.

Walks the paper's decision tree for several canonical scheduling scenarios,
builds the recommended queue for each, and demonstrates it on a small burst
of ranks so the choice is visibly functional.

Run:  python examples/queue_selection.py
"""

import random

from repro.core.queues import (
    CANONICAL_PROFILES,
    WorkloadProfile,
    build_recommended_queue,
    recommend_queue,
)


def demo_profile(name: str, profile: WorkloadProfile) -> None:
    recommendation = recommend_queue(profile)
    queue = build_recommended_queue(profile)
    rng = random.Random(1)
    levels = min(profile.priority_levels, 1000)
    ranks = [rng.randrange(levels) for _ in range(50)]
    for rank in ranks:
        queue.enqueue(rank, rank)
    drained = [queue.extract_min()[0] for _ in range(len(ranks))]
    in_order = drained == sorted(drained)
    print(f"- {name}: {profile.description}")
    print(f"    levels={profile.priority_levels}, moving={profile.moving_range}, "
          f"uniform={profile.uniform_occupancy}")
    print(f"    decision path: {recommendation}")
    print(f"    built {type(queue).__name__}; drained 50 ranks "
          f"{'in order' if in_order else 'approximately in order'}\n")


def main() -> None:
    print("Queue selection guide (Figure 20)\n")
    for name, profile in CANONICAL_PROFILES.items():
        demo_profile(name, profile)

    custom = WorkloadProfile(
        priority_levels=250_000,
        moving_range=True,
        uniform_occupancy=True,
        description="Custom: per-packet deadlines over a 250k-level moving range",
    )
    demo_profile("custom_deadlines", custom)


if __name__ == "__main__":
    main()
