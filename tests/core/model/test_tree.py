"""Unit tests for scheduling trees and node rank policies."""

import pytest

from repro.core.model import (
    FIFORankPolicy,
    NodeConfig,
    Packet,
    RateLimit,
    SchedulingTree,
    StrictPriorityRankPolicy,
    WFQRankPolicy,
)


def two_level_tree(root_policy=None):
    configs = [
        NodeConfig(name="root", rank_policy=root_policy),
        NodeConfig(name="left", parent="root"),
        NodeConfig(name="right", parent="root"),
    ]
    return SchedulingTree(configs)


class TestTreeStructure:
    def test_requires_single_root(self):
        with pytest.raises(ValueError):
            SchedulingTree([NodeConfig(name="a"), NodeConfig(name="b")])
        with pytest.raises(ValueError):
            SchedulingTree([NodeConfig(name="a", parent="missing")])
        with pytest.raises(ValueError):
            SchedulingTree([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SchedulingTree([NodeConfig(name="a"), NodeConfig(name="a", parent="a")])

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError):
            SchedulingTree(
                [NodeConfig(name="root"), NodeConfig(name="x", parent="ghost")]
            )

    def test_leaves_and_paths(self):
        tree = two_level_tree()
        assert {node.name for node in tree.leaves()} == {"left", "right"}
        path = [node.name for node in tree.path_to_root("left")]
        assert path == ["left", "root"]

    def test_shaping_transactions_on_path(self):
        configs = [
            NodeConfig(name="root", rate_limit=RateLimit(20e6)),
            NodeConfig(name="mid", parent="root", rate_limit=RateLimit(10e6)),
            NodeConfig(name="leaf", parent="mid"),
        ]
        tree = SchedulingTree(configs)
        gates = tree.shaping_transactions_on_path("leaf")
        assert [gate.name for gate in gates] == ["mid", "root"]


class TestTreeScheduling:
    def test_fifo_root(self):
        tree = two_level_tree()
        first = Packet(flow_id=1)
        second = Packet(flow_id=2)
        tree.enqueue("left", first)
        tree.enqueue("right", second)
        assert tree.dequeue() is first
        assert tree.dequeue() is second
        assert tree.dequeue() is None

    def test_strict_priority_root(self):
        policy = StrictPriorityRankPolicy({"left": 1, "right": 0})
        tree = two_level_tree(policy)
        low = Packet(flow_id=1)
        high = Packet(flow_id=2)
        tree.enqueue("left", low)
        tree.enqueue("right", high)
        # "right" has the smaller priority value, so it wins.
        assert tree.dequeue() is high
        assert tree.dequeue() is low

    def test_wfq_root_shares_bandwidth(self):
        policy = WFQRankPolicy({"left": 3.0, "right": 1.0})
        tree = two_level_tree(policy)
        for index in range(40):
            tree.enqueue("left", Packet(flow_id=1, size_bytes=1000))
            tree.enqueue("right", Packet(flow_id=2, size_bytes=1000))
        served_left = 0
        for _ in range(40):
            packet = tree.dequeue()
            if packet.flow_id == 1:
                served_left += 1
        # With a 3:1 weight ratio roughly three quarters of the first 40
        # services go to the heavier child.
        assert served_left >= 25

    def test_counts_and_pending(self):
        tree = two_level_tree()
        assert tree.empty
        tree.enqueue("left", Packet(flow_id=1))
        tree.enqueue("left", Packet(flow_id=1))
        assert len(tree) == 2
        pending = tree.pending_per_node()
        assert pending["left"] == 2
        assert pending["root"] == 2
        assert pending["right"] == 0

    def test_enqueue_at_internal_node_rejected(self):
        tree = two_level_tree()
        with pytest.raises(ValueError):
            tree.enqueue("root", Packet(flow_id=1))

    def test_three_level_hierarchy(self):
        configs = [
            NodeConfig(name="root", rank_policy=None),
            NodeConfig(name="tenant_a", parent="root"),
            NodeConfig(name="tenant_b", parent="root"),
            NodeConfig(name="a_web", parent="tenant_a"),
            NodeConfig(name="a_video", parent="tenant_a"),
        ]
        tree = SchedulingTree(configs)
        tree.enqueue("a_web", Packet(flow_id=1))
        tree.enqueue("a_video", Packet(flow_id=2))
        tree.enqueue("tenant_b", Packet(flow_id=3))
        drained = [tree.dequeue().flow_id for _ in range(3)]
        assert sorted(drained) == [1, 2, 3]
        assert tree.empty


class TestRankPolicies:
    def test_strict_priority_requires_known_child(self):
        policy = StrictPriorityRankPolicy({"a": 0})
        with pytest.raises(KeyError):
            policy.rank("b", Packet(flow_id=1), 0)
        with pytest.raises(ValueError):
            StrictPriorityRankPolicy({})

    def test_wfq_validation(self):
        with pytest.raises(ValueError):
            WFQRankPolicy({})
        with pytest.raises(ValueError):
            WFQRankPolicy({"a": 0})
        with pytest.raises(ValueError):
            WFQRankPolicy({"a": 1.0}, quantum_bytes=0)

    def test_fifo_policy_monotonic(self):
        policy = FIFORankPolicy()
        first = policy.rank("x", Packet(flow_id=1), 0)
        second = policy.rank("y", Packet(flow_id=2), 0)
        assert second > first
