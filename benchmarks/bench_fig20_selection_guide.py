"""Figure 20: the queue-selection decision tree, exercised end to end.

Walks the decision tree for the canonical workload profiles, builds each
recommended queue, and measures its wall-clock throughput on a workload shaped
like the profile — confirming that the recommended structure is never slower
than the generic binary-heap fallback for that workload.
"""

import random
import time

from conftest import report

from repro.analysis import Table, format_table
from repro.core.queues import (
    BinaryHeapQueue,
    CANONICAL_PROFILES,
    build_recommended_queue,
    recommend_queue,
)

OPERATIONS = 20_000


def throughput_mpps(queue, levels: int, seed: int = 7) -> float:
    rng = random.Random(seed)
    for _ in range(min(levels, 4096)):
        queue.enqueue(rng.randrange(levels), None)
    start = time.perf_counter()
    for _ in range(OPERATIONS):
        queue.enqueue(rng.randrange(levels), None)
        queue.extract_min()
    elapsed = time.perf_counter() - start
    return OPERATIONS / elapsed / 1e6


def run_guide():
    rows = []
    for name, profile in CANONICAL_PROFILES.items():
        recommendation = recommend_queue(profile)
        recommended = build_recommended_queue(profile)
        levels = min(profile.priority_levels, 100_000)
        recommended_mpps = throughput_mpps(recommended, levels)
        heap_mpps = throughput_mpps(BinaryHeapQueue(), levels)
        rows.append(
            (
                name,
                recommendation.kind.value,
                type(recommended).__name__,
                round(recommended_mpps, 3),
                round(heap_mpps, 3),
            )
        )
    return rows


EXPECTED_DECISIONS = {
    "ieee_802_1q": "any",
    "pfabric_remaining_size": "ffs",
    "per_flow_pacing": "cffs",
    "lstf": "approximate",
    "hclock_hierarchy": "approximate",
    "fallback_bucketed": "ffs",
}


def test_fig20_selection_guide(benchmark):
    rows = benchmark.pedantic(run_guide, rounds=1, iterations=1)
    table = Table(
        title="Decision-tree recommendations and wall-clock throughput "
        "(informational; the binary heap is C-implemented)",
        columns=["workload", "decision", "queue", "recommended Mpps", "heap Mpps"],
    )
    for row in rows:
        table.add_row(*row)
    report("Figure 20 — queue selection guide", format_table(table))
    benchmark.extra_info["rows"] = rows
    # The decisions follow the paper's tree for every canonical workload.
    decisions = {row[0]: row[1] for row in rows}
    assert decisions == EXPECTED_DECISIONS
    # Every recommended queue is functional at its workload's scale.
    assert all(row[3] > 0 for row in rows)
