"""Canonical figure scenarios and the batching sweep they compile to.

Two things live here:

* :func:`figure13_spec` / :func:`figure19_spec` — the two paper figures
  ported onto declarative specs.  Compiling and running them reproduces the
  hand-wired benchmarks' modelled numbers **exactly** (the golden-equivalence
  suite asserts it; ``benchmarks/bench_fig13_batching.py`` and
  ``benchmarks/bench_fig19_pfabric_fct.py`` now run from these specs).

* The batching-sweep implementation (:func:`run_batching_sweep_from_spec`
  and its worker :func:`measure_batching_cell`), moved here from the Figure
  13 benchmark so the compiled ``bess`` kind and the benchmark share one
  code path — the committed ``BENCH_batching.json`` cycles stay
  byte-identical because there is only one implementation to agree with.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .spec import (
    AssertionSpec,
    PolicyTreeSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
)

#: The sweep workload's bucket span (the committed artifact's rank_range);
#: :func:`figure13_spec` carries it in ``policy.num_buckets``.
FIG13_RANK_RANGE = 512

#: ``alpha`` of the approximate gradient queue in the sweep (the committed
#: artifact's configuration).
FIG13_SWEEP_ALPHA = 64

#: Wall-clock rounds per sweep cell: modelled cycles are deterministic and
#: asserted identical across rounds; wall clock reports the best round.
WALL_CLOCK_ROUNDS = 5


def figure13_spec() -> ScenarioSpec:
    """Figure 13 (batching × packet size) plus the batch-size sweep."""
    return ScenarioSpec(
        name="figure13-batching",
        seed=13,  # no random stream; kept for the determinism contract
        topology=TopologySpec(
            kind="bess", line_rate_bps=10e9, cycles_per_second=3.0e9
        ),
        policy=PolicyTreeSpec(num_buckets=FIG13_RANK_RANGE),
        traffic=TrafficSpec(
            num_flows=5_000,
            packet_sizes=(60, 1500),
            batch_sizes=(1, 8, 32, 64),
            sweep_packets=4_096,
        ),
        assertions=AssertionSpec(batch_amortises_at=8),
    )


def figure19_spec() -> ScenarioSpec:
    """Figure 19 (normalized FCT vs load, DCTCP vs pFabric vs approx)."""
    return ScenarioSpec(
        name="figure19-pfabric-fct",
        seed=19,  # FlowWorkload's seed: sizes/gaps/endpoints sub-streams
        topology=TopologySpec(kind="fabric", num_leaves=3, num_spines=3,
                              hosts_per_leaf=3),
        policy=PolicyTreeSpec(schemes=("dctcp", "pfabric", "pfabric_approx")),
        traffic=TrafficSpec(
            workload="websearch", num_flows=120, loads=(0.2, 0.5, 0.8)
        ),
        assertions=AssertionSpec(
            fct_small_flow_advantage=True, fct_approx_tolerance=0.5
        ),
    )


# -- the batching sweep ------------------------------------------------------


def sweep_queue_factories(rank_range: int, queue_names=None) -> dict:
    """``name -> () -> queue`` factories for the batching sweep.

    The bucketed-heap baseline is deliberately absent: its heap index is
    maintained lazily (operations charge only when a bucket drains), so
    batching removes Python call overhead but not modelled operations.
    """
    from ..core.queues import (
        ApproximateGradientQueue,
        BucketSpec,
        CircularFFSQueue,
        GradientQueue,
        HierarchicalFFSQueue,
    )

    factories = {
        "circular_ffs": lambda: CircularFFSQueue(BucketSpec(num_buckets=rank_range)),
        "hierarchical_ffs": lambda: HierarchicalFFSQueue(
            BucketSpec(num_buckets=rank_range)
        ),
        "gradient": lambda: GradientQueue(BucketSpec(num_buckets=rank_range)),
        "approx_gradient": lambda: ApproximateGradientQueue(
            BucketSpec(num_buckets=rank_range), alpha=FIG13_SWEEP_ALPHA
        ),
    }
    if queue_names is None:
        return factories
    return {name: factories[name] for name in queue_names}


def batching_workload(num_packets: int, rank_range: int) -> List[int]:
    """Deterministic pseudo-random ranks (no RNG dependency, reproducible)."""
    return [(index * 2654435761) % rank_range for index in range(num_packets)]


def _modelled_cycles(stats_before, stats_after) -> float:
    from ..cpu import CostModel

    model = CostModel()
    model.charge_queue_stats(stats_after.diff(stats_before).as_dict())
    return model.total_cycles


def measure_batching_cell(
    factory, batch_size: int, ranks, rounds: int = WALL_CLOCK_ROUNDS
) -> dict:
    """Enqueue + drain one workload; returns modelled and wall-clock numbers.

    Runs ``rounds`` rounds on fresh queues: wall-clock numbers are the best
    round, modelled cycles are asserted identical across rounds.
    """
    pairs = [(rank, index) for index, rank in enumerate(ranks)]
    horizon = max(ranks) if ranks else 0
    best_enqueue = float("inf")
    best_drain = float("inf")
    enqueue_cycles = drain_cycles = 0.0
    for round_index in range(max(1, rounds)):
        queue = factory()

        # Enqueue phase.
        enqueue_before = queue.stats.snapshot()
        start = time.perf_counter()
        if batch_size == 1:
            for rank, item in pairs:
                queue.enqueue(rank, item)
        else:
            for offset in range(0, len(pairs), batch_size):
                queue.enqueue_batch(pairs[offset : offset + batch_size])
        enqueue_elapsed = time.perf_counter() - start
        round_enqueue_cycles = _modelled_cycles(enqueue_before, queue.stats)

        # Drain phase: batch == 1 is the per-packet consumer path (peek +
        # extract per packet, as a timer fire does without batching);
        # batch > 1 drains through the amortised ``extract_due`` path in
        # bounded bursts.
        drain_before = queue.stats.snapshot()
        drained = 0
        start = time.perf_counter()
        if batch_size == 1:
            while not queue.empty:
                rank, _item = queue.peek_min()
                if rank > horizon:  # pragma: no cover - horizon covers all ranks
                    break
                queue.extract_min()
                drained += 1
        else:
            while not queue.empty:
                drained += len(queue.extract_due(horizon, limit=batch_size))
        drain_elapsed = time.perf_counter() - start
        round_drain_cycles = _modelled_cycles(drain_before, queue.stats)

        assert drained == len(ranks)
        if round_index == 0:
            enqueue_cycles, drain_cycles = round_enqueue_cycles, round_drain_cycles
        else:
            # The cost model's answer must not depend on the round.
            assert round_enqueue_cycles == enqueue_cycles
            assert round_drain_cycles == drain_cycles
        best_enqueue = min(best_enqueue, enqueue_elapsed)
        best_drain = min(best_drain, drain_elapsed)

    packets = max(1, len(ranks))
    return {
        "batch_size": batch_size,
        "enqueue_cycles_per_packet": enqueue_cycles / packets,
        "drain_cycles_per_packet": drain_cycles / packets,
        "cycles_per_packet": (enqueue_cycles + drain_cycles) / packets,
        "enqueue_ops_per_sec": packets / max(best_enqueue, 1e-9),
        "drain_ops_per_sec": packets / max(best_drain, 1e-9),
    }


def run_batching_sweep(
    batch_sizes=None,
    queue_factories=None,
    num_packets: int = 4_096,
    rank_range: int = FIG13_RANK_RANGE,
    rounds: int = WALL_CLOCK_ROUNDS,
) -> dict:
    """Sweep batch sizes across queue types; returns the artifact payload."""
    sizes = list(batch_sizes) if batch_sizes else [1, 8, 32, 64]
    factories = queue_factories or sweep_queue_factories(rank_range)
    ranks = batching_workload(num_packets, rank_range)
    queues = {}
    for name, factory in factories.items():
        queues[name] = {
            str(size): measure_batching_cell(factory, size, ranks, rounds=rounds)
            for size in sizes
        }
    return {
        "benchmark": "batching_sweep",
        "description": (
            "Amortised batch enqueue/drain vs the per-packet peek+extract "
            "path, per integer-queue type (modelled cycles/packet from the "
            "CPU cost model, wall-clock ops/sec from perf_counter)."
        ),
        "workload": {
            "num_packets": num_packets,
            "rank_range": rank_range,
            "distribution": "deterministic multiplicative-hash ranks",
        },
        "batch_sizes": sizes,
        "queues": queues,
    }


def run_batching_sweep_from_spec(
    spec: ScenarioSpec, rounds: int = WALL_CLOCK_ROUNDS
) -> dict:
    """The sweep as a compiled spec runs it (``policy.num_buckets`` is the
    rank range, ``policy.sweep_queues`` the queue set).  ``rounds`` is a
    measurement detail, not scenario state — wall clock is nondeterministic
    either way, and the modelled cycles are identical at any round count."""
    return run_batching_sweep(
        batch_sizes=list(spec.traffic.batch_sizes),
        queue_factories=sweep_queue_factories(
            spec.policy.num_buckets, spec.policy.sweep_queues
        ),
        num_packets=spec.traffic.sweep_packets,
        rank_range=spec.policy.num_buckets,
        rounds=rounds,
    )


def run_figure13_from_spec(spec: ScenarioSpec) -> Dict[str, object]:
    """Figure 13 proper (hClock vs Eiffel × batching) from a compiled spec."""
    from ..bess import BessExperimentConfig, run_figure13

    return run_figure13(
        num_flows=spec.traffic.num_flows,
        packet_sizes=list(spec.traffic.packet_sizes),
        config=BessExperimentConfig(
            line_rate_bps=spec.topology.line_rate_bps,
            cycles_per_second=spec.topology.cycles_per_second,
        ),
    )


def run_figure19_from_spec(spec: ScenarioSpec) -> Dict[str, List[object]]:
    """Figure 19 (scheme × load FCT sweep) from a compiled spec."""
    from .compiler import compile_scenario

    result = compile_scenario(spec).run()
    result.check()
    return result.fabric


__all__ = [
    "FIG13_RANK_RANGE",
    "FIG13_SWEEP_ALPHA",
    "WALL_CLOCK_ROUNDS",
    "batching_workload",
    "figure13_spec",
    "figure19_spec",
    "measure_batching_cell",
    "run_batching_sweep",
    "run_batching_sweep_from_spec",
    "run_figure13_from_spec",
    "run_figure19_from_spec",
    "sweep_queue_factories",
]
