"""Hypothesis strategies over scenario specs: fuzz the runtime as data.

The point of the declarative layer is that "a configuration of the whole
system" is now a value — so Hypothesis can *generate* configurations and the
property suite can run each one end-to-end against the runtime-wide
invariant net (packet conservation, per-flow FIFO, no stranded flow-table
slots or leases after drain).  Shards × stealing × rebalancing × ingress
cores × admission × queue type × traffic pattern is a space no hand-written
test matrix covers; the strategy below samples it with every draw
constructively valid, so shrinking stays inside the valid region and a
failing example is always a real counterexample, never a spec typo.

Hypothesis is a test-only dependency: it is imported lazily inside the
strategy functions, so importing :mod:`repro.scenario` (or shipping it
somewhere without Hypothesis) stays dependency-free.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .spec import (
    QUEUE_NAMES,
    AssertionSpec,
    FaultsSpec,
    IngressSpec,
    ObservabilitySpec,
    PolicyTreeSpec,
    RuntimeSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    validate,
)

#: Kept deliberately small: every drawn spec is *run end-to-end*, so the
#: per-example budget rules the fuzz suite's wall clock.
MAX_FUZZ_FLOWS = 24
MAX_FUZZ_PACKETS = 200


def scenario_specs(max_shards: int = 4, max_ingress_cores: int = 2):
    """Strategy drawing random *valid* runtime-kind scenario specs.

    Every draw composes the axes the runtime-wide invariants must survive:
    shard count, placement policy, queue type, work stealing, periodic
    rebalancing, ingress cores with every admission policy (and pure
    backpressure), bounded mailboxes, pacing overrides, and both traffic
    patterns.  Validity is by construction — e.g. an admission policy is
    only drawn when at least one ingress core is, and pacing overrides only
    name flows the traffic spec generates — and double-checked with
    :func:`~repro.scenario.spec.validate` so a strategy bug surfaces as a
    loud typed error, not as silent fuzz-space shrinkage.
    """
    import hypothesis.strategies as st

    @st.composite
    def _spec(draw) -> ScenarioSpec:
        seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
        shards = draw(st.integers(min_value=1, max_value=max_shards))
        stealing = draw(st.booleans())
        rebalancing = draw(st.booleans())
        ingress_cores = draw(st.integers(min_value=0, max_value=max_ingress_cores))
        admission = (
            draw(st.sampled_from(("none", "tail_drop", "fair_drop", "codel")))
            if ingress_cores
            else "none"
        )
        num_flows = draw(st.integers(min_value=1, max_value=MAX_FUZZ_FLOWS))
        pattern = draw(st.sampled_from(("round_robin", "zipf")))
        # Pacing: either unpaced, or a default rate with a few per-flow
        # overrides drawn from the flows the traffic spec actually generates.
        default_rate: Optional[float] = draw(
            st.one_of(st.none(), st.sampled_from((1e9, 10e9)))
        )
        overrides = ()
        if default_rate is not None:
            override_flows = draw(
                st.lists(
                    st.integers(min_value=0, max_value=num_flows - 1),
                    unique=True,
                    max_size=3,
                )
            )
            overrides = tuple(
                (flow_id, draw(st.sampled_from((5e8, 2e9)))) for flow_id in override_flows
            )
        mailbox_capacity = draw(st.one_of(st.none(), st.sampled_from((64, 256))))
        spec = ScenarioSpec(
            name=f"fuzz-{seed:08x}",
            seed=seed,
            topology=TopologySpec(kind="runtime"),
            policy=PolicyTreeSpec(
                queue=draw(st.sampled_from(QUEUE_NAMES)),
                num_buckets=draw(st.sampled_from((256, 1024))),
                default_rate_bps=default_rate,
                flow_rates=overrides,
            ),
            traffic=TrafficSpec(
                pattern=pattern,
                num_flows=num_flows,
                total_packets=draw(st.integers(min_value=0, max_value=MAX_FUZZ_PACKETS)),
                offered_pps=draw(st.sampled_from((1e5, 1e6, 1e7))),
                burst_size=draw(st.integers(min_value=1, max_value=32)),
                packet_bytes=draw(st.sampled_from((60, 1500))),
                zipf_skew=draw(st.sampled_from((0.0, 1.1, 1.8))),
            ),
            ingress=IngressSpec(
                cores=ingress_cores,
                admission=admission,
                rx_ring_capacity=draw(st.sampled_from((64, 512))),
                rx_burst=draw(st.integers(min_value=1, max_value=64)),
                backpressure=True,
                mailbox_capacity=mailbox_capacity,
            ),
            runtime=RuntimeSpec(
                shards=shards,
                sharding=draw(st.sampled_from(("hash", "round_robin"))),
                stealing=stealing,
                steal_min_backlog=draw(st.integers(min_value=1, max_value=16)),
                rebalance_interval_ns=(
                    draw(st.sampled_from((200_000, 1_000_000))) if rebalancing else None
                ),
                gc_interval_packets=draw(st.one_of(st.none(), st.sampled_from((32, 4096)))),
                gc_sweep_limit=draw(st.one_of(st.none(), st.just(8))),
            ),
            # The invariant net, enabled runtime-wide; bounds stay off so a
            # failure is always an invariant violation, not a tuning matter.
            assertions=AssertionSpec(),
        )
        return validate(spec)

    return _spec()


def chaos_scenario_specs(max_shards: int = 4, max_ingress_cores: int = 2):
    """Strategy drawing random valid specs with a random ``[faults]`` block.

    Composes :func:`scenario_specs` — every configuration axis the plain
    fuzz suite covers — with a seeded fault schedule: shard crashes, stalls,
    handoff drops, and (when the base spec drew ingress cores) ingress
    wedges, plus the optional lease-deadline and supervision-interval
    watchdog knobs.  The runtime-wide invariant net must hold through
    injection *and* recovery: every packet delivered or attributed to a
    counted loss, per-flow FIFO for re-homed flows, no stranded state after
    drain.  Validity stays constructive (``ingress_wedge`` is only drawn
    when the base spec has RX cores), so shrinking never leaves the valid
    region.

    Some draws also arm the observability plane (latency histograms and the
    flight recorder), so the chaos suite exercises tracing *under failure* —
    injection and recovery events land in a bounded trace while the
    invariants are being checked.
    """
    import hypothesis.strategies as st

    @st.composite
    def _spec(draw) -> ScenarioSpec:
        base = draw(scenario_specs(max_shards, max_ingress_cores))
        kind_pool = ["shard_crash", "shard_stall", "handoff_drop"]
        if base.ingress.cores > 0:
            kind_pool.append("ingress_wedge")
        kinds = tuple(
            draw(
                st.lists(
                    st.sampled_from(kind_pool), min_size=1, max_size=3, unique=True
                )
            )
        )
        faults = FaultsSpec(
            kinds=kinds,
            events=draw(st.integers(min_value=1, max_value=4)),
            max_tick=draw(st.sampled_from((4, 16, 64))),
            max_handoff_drops=draw(st.integers(min_value=1, max_value=8)),
            lease_deadline_ns=(
                draw(st.sampled_from((200_000, 2_000_000)))
                if base.runtime.stealing and draw(st.booleans())
                else None
            ),
            supervise_interval_ns=draw(
                st.one_of(st.none(), st.sampled_from((100_000, 500_000)))
            ),
        )
        observability = ObservabilitySpec()
        if draw(st.booleans()):
            observability = ObservabilitySpec(
                latency_histograms=draw(st.booleans()),
                tracer=True,
                trace_capacity=draw(st.sampled_from((256, 4096))),
            )
        return validate(
            dataclasses.replace(
                base,
                name=f"chaos-{base.seed:08x}",
                faults=faults,
                observability=observability,
            )
        )

    return _spec()


def parallel_backend_specs(max_shards: int = 4):
    """Strategy for specs on the ``process``/``thread`` backends.

    Parallel backends reject stealing, rebalancing and ingress cores at
    validation time, so this strategy simply never draws them — the
    statically decomposable subset of the scenario space.
    """
    import hypothesis.strategies as st

    @st.composite
    def _spec(draw) -> ScenarioSpec:
        seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
        num_flows = draw(st.integers(min_value=1, max_value=MAX_FUZZ_FLOWS))
        spec = ScenarioSpec(
            name=f"fuzz-parallel-{seed:08x}",
            seed=seed,
            policy=PolicyTreeSpec(queue=draw(st.sampled_from(QUEUE_NAMES))),
            traffic=TrafficSpec(
                pattern=draw(st.sampled_from(("round_robin", "zipf"))),
                num_flows=num_flows,
                total_packets=draw(st.integers(min_value=0, max_value=MAX_FUZZ_PACKETS)),
                burst_size=draw(st.integers(min_value=1, max_value=32)),
            ),
            runtime=RuntimeSpec(
                shards=draw(st.integers(min_value=1, max_value=max_shards)),
                backend=draw(st.sampled_from(("thread", "process"))),
            ),
        )
        return validate(spec)

    return _spec()


__all__ = [
    "MAX_FUZZ_FLOWS",
    "MAX_FUZZ_PACKETS",
    "chaos_scenario_specs",
    "parallel_backend_specs",
    "scenario_specs",
]
