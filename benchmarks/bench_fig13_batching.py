"""Figure 13 + the batching perf harness, run from a compiled ScenarioSpec.

Two experiments live here:

1. **Figure 13** (the paper's): effect of per-flow batching and packet size
   on the BESS pipeline (hClock vs Eiffel, 5k flows).  Without batching,
   60 B packets cannot reach line rate; per-flow batching (10 KB bursts)
   recovers most of it; with 1500 B packets the schedulers are limited by
   their per-packet data-structure cost, where Eiffel holds line rate and
   the heap implementation does not.

2. **Batch-size sweep**: the library-level counterpart.  Every integer queue
   exposes amortised ``enqueue_batch`` / ``extract_min_batch`` /
   ``extract_due`` paths; the sweep records both modelled cycles/packet and
   wall-clock ops/sec per batch size, and the results seed the perf
   trajectory in ``BENCH_batching.json`` at the repo root.

Both now run from the declarative :func:`repro.scenario.figures.figure13_spec`
— the sweep implementation itself lives in :mod:`repro.scenario.figures`
(one code path shared with the compiled ``bess`` scenario kind, so the
committed artifact's modelled cycles stay byte-identical by construction).

Run standalone (``python benchmarks/bench_fig13_batching.py``) to regenerate
the artifact, or through pytest for the assertions.
"""

import json
from pathlib import Path

from conftest import report

from repro.analysis import format_series
from repro.scenario.figures import (
    figure13_spec,
    run_batching_sweep_from_spec,
    run_figure13_from_spec,
)

SPEC = figure13_spec()
NUM_FLOWS = SPEC.traffic.num_flows
LINE_RATE_BPS = SPEC.topology.line_rate_bps

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batching.json"


def run_batching_sweep() -> dict:
    """The batch-size sweep of the compiled Figure 13 scenario."""
    return run_batching_sweep_from_spec(SPEC)


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_batching.json`` (the perf-trajectory artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_sweep(results: dict) -> str:
    lines = []
    header = f"{'queue':<18}" + "".join(f"b={size:<8}" for size in results["batch_sizes"])
    lines.append(header + "  (drain cycles/packet)")
    for name, by_size in results["queues"].items():
        row = f"{name:<18}"
        for size in results["batch_sizes"]:
            row += f"{by_size[str(size)]['drain_cycles_per_packet']:<10.1f}"
        lines.append(row)
    return "\n".join(lines)


# -- pytest entry points ------------------------------------------------------


def run_experiment():
    return run_figure13_from_spec(SPEC)


def test_fig13_batching_and_packet_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = format_series(
        f"Max rate vs packet size, {NUM_FLOWS} flows (batching on/off)",
        list(results.values()),
        x_label="packet bytes",
        y_label="Mbps",
    )
    report("Figure 13 — batching and packet size", text)

    def rate(series_name: str, size: int) -> float:
        series = results[series_name]
        return series.y[series.x.index(size)]

    benchmark.extra_info["rates_mbps"] = {
        name: dict(zip(series.x, series.y)) for name, series in results.items()
    }
    # Small packets without batching fall far short of line rate.
    assert rate("eiffel_no_batching", 60) < 0.8 * LINE_RATE_BPS / 1e6
    # Batching recovers small-packet throughput for Eiffel.
    assert rate("eiffel_batching", 60) > rate("eiffel_no_batching", 60)
    # At MTU size without batching Eiffel outperforms the heap baseline.
    assert rate("eiffel_no_batching", 1500) > rate("hclock_no_batching", 1500)


def test_batch_sweep_emits_artifact_and_amortises(benchmark, tmp_path):
    results = benchmark.pedantic(run_batching_sweep, rounds=1, iterations=1)
    # The test writes to a scratch path: the committed BENCH_batching.json
    # contains machine-dependent wall-clock numbers, so it is regenerated
    # deliberately (``python benchmarks/bench_fig13_batching.py``), not as a
    # side effect of every test run.
    path = write_artifact(results, tmp_path / "BENCH_batching.json")
    report("Batching sweep — modelled cycles/packet", _format_sweep(results))
    benchmark.extra_info["artifact"] = str(path)

    assert len(results["queues"]) >= 3
    assert set(results["batch_sizes"]) >= {1, 8, 32, 64}
    # The spec's own assertion block is the amortisation gate: every queue's
    # batched drain must beat the per-packet path from batch 8 on.
    amortises_at = SPEC.assertions.batch_amortises_at
    for name, by_size in results["queues"].items():
        baseline = by_size["1"]["drain_cycles_per_packet"]
        for size in results["batch_sizes"]:
            if size >= amortises_at:
                batched = by_size[str(size)]["drain_cycles_per_packet"]
                assert batched < baseline, (
                    f"{name}: batch={size} drain ({batched:.1f}) not below "
                    f"per-packet path ({baseline:.1f})"
                )


if __name__ == "__main__":
    sweep = run_batching_sweep()
    artifact = write_artifact(sweep)
    print(_format_sweep(sweep))
    print(f"\nwrote {artifact}")
