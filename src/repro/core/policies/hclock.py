"""hClock — hierarchical QoS with reservations, limits and shares (Use Case 2).

hClock (Billaud & Gulati, EuroSys'13) gives every flow (traffic class) three
controls:

* **reservation** — a guaranteed minimum rate;
* **limit** — a hard maximum rate;
* **share** (weight) — how spare capacity is divided.

The Eiffel formulation (Figure 11) keeps three per-flow tags advanced by
``packet_size / parameter``:

* ``r_rank`` — reservation tag (a timestamp: while it lags behind real time
  the flow has not yet received its reserved rate and is served first);
* ``l_rank`` — limit tag (a timestamp: while it is in the future the flow has
  exceeded its limit and is ineligible);
* ``s_rank`` — share tag (a virtual time used to divide spare capacity in
  proportion to weights).

The paper's pseudo-code advances the tags on enqueue; this implementation
advances them when a packet is *served* (the service-time formulation of the
original hClock), which yields the same per-packet number of queue
relocations while making the enforced rates exact — what the behavioural
tests check.  Dequeue at time ``now``: first any flow whose ``r_rank <= now``
(reservation not yet met), otherwise the smallest ``s_rank`` among flows with
``l_rank <= now``.  If every backlogged flow is limit-bound the scheduler
returns nothing (non-work-conserving), as hClock requires.

Two implementations share this logic:

* :class:`EiffelHClockScheduler` — flows indexed by bucketed integer queues
  (cFFS), every tag update is an O(1) relocation (the Figure 12 "Eiffel"
  series).
* :class:`HeapHClockScheduler` — flows kept in binary min-heaps re-heapified
  on every tag change (the Figure 12 "hClock" baseline).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .base import PacketScheduler
from ..model.packet import Flow, FlowTable, Packet
from ..model.pifo import PIFOBlock, QueueFactory, default_queue_factory
from ..queues import BucketSpec


@dataclass
class HClockClass:
    """Static configuration of one hClock traffic class (flow).

    Attributes:
        reservation_bps: guaranteed rate (0 disables the reservation).
        limit_bps: maximum rate (``None`` means unlimited).
        share: relative weight for spare capacity.
    """

    reservation_bps: float = 0.0
    limit_bps: Optional[float] = None
    share: float = 1.0

    def __post_init__(self) -> None:
        if self.reservation_bps < 0:
            raise ValueError("reservation_bps must be non-negative")
        if self.limit_bps is not None and self.limit_bps <= 0:
            raise ValueError("limit_bps must be positive when set")
        if self.share <= 0:
            raise ValueError("share must be positive")


class _HClockBase(PacketScheduler):
    """Shared tag arithmetic for both hClock implementations."""

    #: Virtual-time scale of the share tag (ns of virtual service per bit
    #: at share 1.0); keeps share ranks in an integer range a bucketed queue
    #: can index.
    SHARE_SCALE_BPS = 1e9

    def __init__(self, default_class: Optional[HClockClass] = None) -> None:
        self.classes: Dict[int, HClockClass] = {}
        self.default_class = default_class or HClockClass()
        self._flows = FlowTable()
        self._pending = 0

    # -- class configuration --------------------------------------------------------

    def configure_class(self, flow_id: int, config: HClockClass) -> None:
        """Set the reservation/limit/share parameters of a traffic class."""
        self.classes[flow_id] = config

    def class_of(self, flow_id: int) -> HClockClass:
        """Parameters of ``flow_id`` (the default class when unconfigured)."""
        return self.classes.get(flow_id, self.default_class)

    # -- tag maintenance ---------------------------------------------------------------

    def _init_tags(self, flow: Flow, now_ns: int) -> None:
        """Initialise tags when a flow becomes backlogged."""
        config = self.class_of(flow.flow_id)
        extra = flow.state.extra
        if config.reservation_bps > 0:
            extra.setdefault("r_rank", now_ns)
            extra["r_rank"] = max(extra["r_rank"], now_ns)
        else:
            extra["r_rank"] = None
        extra.setdefault("l_rank", now_ns)
        extra["l_rank"] = max(extra["l_rank"], now_ns) if config.limit_bps else 0
        extra.setdefault("s_rank", 0)

    def _advance_tags_on_service(
        self, flow: Flow, packet: Packet, now_ns: int
    ) -> None:
        """Advance the three tags after ``packet`` was served (Figure 11)."""
        config = self.class_of(flow.flow_id)
        extra = flow.state.extra
        bits = packet.size_bits
        if config.reservation_bps > 0 and extra.get("r_rank") is not None:
            extra["r_rank"] = max(extra["r_rank"], now_ns) + int(
                bits / config.reservation_bps * 1e9
            )
        if config.limit_bps is not None:
            extra["l_rank"] = max(extra["l_rank"], now_ns) + int(
                bits / config.limit_bps * 1e9
            )
        extra["s_rank"] = extra.get("s_rank", 0) + int(
            bits / (config.share * self.SHARE_SCALE_BPS) * 1e9
        )

    def _flow_eligible_by_limit(self, flow: Flow, now_ns: int) -> bool:
        limit_tag = flow.state.extra.get("l_rank", 0)
        return limit_tag <= now_ns

    def _flow_reservation_due(self, flow: Flow, now_ns: int) -> bool:
        reservation_tag = flow.state.extra.get("r_rank")
        return reservation_tag is not None and reservation_tag <= now_ns

    # -- shared introspection --------------------------------------------------------------

    @property
    def pending(self) -> int:
        return self._pending

    @property
    def active_flows(self) -> int:
        """Flows with queued packets."""
        return len(self._flows.active_flows())

    def next_event_ns(self) -> Optional[int]:
        """Earliest limit tag among backlogged flows (None when idle)."""
        candidates = [
            flow.state.extra.get("l_rank", 0) for flow in self._flows.active_flows()
        ]
        if not candidates:
            return None
        return min(candidates)


class EiffelHClockScheduler(_HClockBase):
    """hClock on Eiffel's bucketed queues (the Figure 12 "Eiffel" series).

    Two PIFOs are maintained: one ordering flows by reservation tag and one
    by share tag.  Both are backed by cFFS queues, so tag updates relocate a
    flow in O(1) and dequeue is an O(1) extract-min plus eligibility checks.
    """

    name = "hclock_eiffel"

    def __init__(
        self,
        default_class: Optional[HClockClass] = None,
        buckets: int = 32_768,
        tag_granularity_ns: int = 10_000,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        super().__init__(default_class)
        reservation_spec = BucketSpec(
            num_buckets=buckets, granularity=tag_granularity_ns
        )
        share_spec = BucketSpec(num_buckets=buckets, granularity=tag_granularity_ns)
        self._reservation_pifo = PIFOBlock(
            reservation_spec, queue_factory, name="hclock.reservation"
        )
        self._share_pifo = PIFOBlock(share_spec, queue_factory, name="hclock.shares")

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        flow = self._flows.get(packet.flow_id)
        newly_backlogged = flow.empty
        flow.push(packet)
        self._pending += 1
        if newly_backlogged:
            self._init_tags(flow, now_ns)
            extra = flow.state.extra
            if extra.get("r_rank") is not None:
                self._reservation_pifo.reinsert(flow, extra["r_rank"])
            self._share_pifo.reinsert(flow, extra["s_rank"])

    def enqueue_batch(self, packets: Iterable[Packet], now_ns: int = 0) -> int:
        """Batched admit: tag init and PIFO inserts once per newly active flow.

        Packets of already-backlogged flows only append to the flow's FIFO;
        flows that become backlogged in this batch are tagged once and
        inserted into both PIFOs through the backing queues' batched path.
        """
        newly_backlogged: List[Flow] = []
        count = 0
        for packet in packets:
            flow = self._flows.get(packet.flow_id)
            if flow.empty:
                newly_backlogged.append(flow)
            flow.push(packet)
            self._pending += 1
            count += 1
        reservation_pairs: List[tuple[int, Flow]] = []
        share_pairs: List[tuple[int, Flow]] = []
        for flow in newly_backlogged:
            self._init_tags(flow, now_ns)
            extra = flow.state.extra
            if extra.get("r_rank") is not None:
                self._reservation_pifo.remove(flow)
                reservation_pairs.append((extra["r_rank"], flow))
            self._share_pifo.remove(flow)
            share_pairs.append((extra["s_rank"], flow))
        if reservation_pairs:
            self._reservation_pifo.push_batch(reservation_pairs)
        if share_pairs:
            self._share_pifo.push_batch(share_pairs)
        return count

    def _serve(self, flow: Flow, now_ns: int) -> Packet:
        packet = flow.pop()
        self._pending -= 1
        self._advance_tags_on_service(flow, packet, now_ns)
        extra = flow.state.extra
        if flow.empty:
            self._reservation_pifo.remove(flow)
            self._share_pifo.remove(flow)
        else:
            if extra.get("r_rank") is not None:
                self._reservation_pifo.reinsert(flow, extra["r_rank"])
            self._share_pifo.reinsert(flow, extra["s_rank"])
        return packet

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        if self._pending == 0:
            return None
        # 1) Reservations first: serve a flow whose reservation tag is due.
        while not self._reservation_pifo.empty:
            tag = self._reservation_pifo.min_rank()
            if tag is None or tag > now_ns:
                break
            _rank, flow = self._reservation_pifo.peek()
            if flow.empty:
                self._reservation_pifo.pop()
                continue
            return self._serve(flow, now_ns)
        # 2) Spare capacity by shares, respecting limits: scan flows in share
        #    order, skipping (and restoring) limit-bound flows.
        skipped: List[tuple[int, Flow]] = []
        selected: Optional[Flow] = None
        while not self._share_pifo.empty:
            rank, flow = self._share_pifo.pop()
            if flow.empty:
                continue
            if self._flow_eligible_by_limit(flow, now_ns):
                selected = flow
                break
            skipped.append((rank, flow))
        for rank, flow in skipped:
            self._share_pifo.push(rank, flow)
        if selected is None:
            return None
        # _serve reinserts the selected flow at its advanced share tag.
        return self._serve(selected, now_ns)


class HeapHClockScheduler(_HClockBase):
    """hClock baseline with binary min-heaps (the Figure 12 "hClock" series).

    Tag updates append/update heap entries and re-heapify, matching the
    original min-heap implementation's per-packet heap maintenance cost.
    ``heap_operations`` counts element moves for the CPU cost model.
    """

    name = "hclock_heap"

    def __init__(self, default_class: Optional[HClockClass] = None) -> None:
        super().__init__(default_class)
        self._reservation_heap: List[List] = []
        self._share_heap: List[List] = []
        self._reservation_entries: Dict[int, List] = {}
        self._share_entries: Dict[int, List] = {}
        self.heap_operations = 0

    # -- heap maintenance -------------------------------------------------------------

    def _update_heap(
        self, heap: List[List], entries: Dict[int, List], flow: Flow, tag: int
    ) -> None:
        entry = entries.get(flow.flow_id)
        if entry is None:
            # New flow: a plain O(log n) push.
            entry = [tag, flow.flow_id, flow]
            entries[flow.flow_id] = entry
            heapq.heappush(heap, entry)
            self.heap_operations += max(1, len(heap).bit_length())
        else:
            # Updating an arbitrary element's tag needs a heap rebuild.
            entry[0] = tag
            heapq.heapify(heap)
            self.heap_operations += max(1, len(heap))

    def _drop_from_heap(
        self, heap: List[List], entries: Dict[int, List], flow_id: int
    ) -> None:
        entry = entries.pop(flow_id, None)
        if entry is None:
            return
        heap.remove(entry)
        heapq.heapify(heap)
        self.heap_operations += max(1, len(heap))

    # -- scheduler interface ---------------------------------------------------------------

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        flow = self._flows.get(packet.flow_id)
        newly_backlogged = flow.empty
        flow.push(packet)
        self._pending += 1
        if newly_backlogged:
            self._init_tags(flow, now_ns)
            extra = flow.state.extra
            if extra.get("r_rank") is not None:
                self._update_heap(
                    self._reservation_heap,
                    self._reservation_entries,
                    flow,
                    extra["r_rank"],
                )
            self._update_heap(
                self._share_heap, self._share_entries, flow, extra["s_rank"]
            )

    def _serve(self, flow: Flow, now_ns: int) -> Packet:
        packet = flow.pop()
        self._pending -= 1
        self._advance_tags_on_service(flow, packet, now_ns)
        extra = flow.state.extra
        if flow.empty:
            self._drop_from_heap(
                self._reservation_heap, self._reservation_entries, flow.flow_id
            )
            self._drop_from_heap(self._share_heap, self._share_entries, flow.flow_id)
        else:
            if extra.get("r_rank") is not None:
                self._update_heap(
                    self._reservation_heap,
                    self._reservation_entries,
                    flow,
                    extra["r_rank"],
                )
            self._update_heap(
                self._share_heap, self._share_entries, flow, extra["s_rank"]
            )
        return packet

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        if self._pending == 0:
            return None
        if self._reservation_heap:
            tag, _flow_id, flow = self._reservation_heap[0]
            if tag <= now_ns and not flow.empty:
                return self._serve(flow, now_ns)
        # Fast path: the share-heap minimum is usually eligible.
        if self._share_heap:
            _tag, _flow_id, flow = self._share_heap[0]
            if not flow.empty and self._flow_eligible_by_limit(flow, now_ns):
                return self._serve(flow, now_ns)
        # Slow path: scan the share heap in tag order for an eligible flow.
        for tag, _flow_id, flow in sorted(self._share_heap):
            self.heap_operations += 1
            if flow.empty:
                continue
            if self._flow_eligible_by_limit(flow, now_ns):
                return self._serve(flow, now_ns)
        return None


__all__ = ["EiffelHClockScheduler", "HClockClass", "HeapHClockScheduler"]
