"""Golden-equivalence suite: optimised queues vs a sorted-list reference.

The hot-path pass (``__slots__``, bucket-deque free lists, the cached bitmap
minimum, direct-append batch loops, whole-bucket drain fast paths) must be
*behaviour-preserving*: for every interleaving of operations, an optimised
queue must return exactly what the unoptimised reference semantics return.
The reference here is the simplest possible model — a sorted list of
``(priority, arrival_seq, item)`` — against which hypothesis drives random
interleavings of ``enqueue`` / ``enqueue_batch`` / ``extract_min`` /
``extract_min_batch`` / ``extract_due`` / ``remove`` / ``peek_min``.

Every exact queue must match the model verbatim.  The circular FFS queue is
driven within its initial primary window, where its contract is exact too
(its overflow-approximation behaviour across rotations is covered by the
dedicated cFFS tests and the batch-vs-single property suite).  The
approximate gradient queue is exempt by design — its contract allows
non-extremal selection — and stays under its own error-bound tests.
"""

import bisect
import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.queues import (
    BucketSpec,
    BucketedHeapQueue,
    CircularFFSQueue,
    EmptyQueueError,
    FFSQueue,
    GradientQueue,
    HierarchicalFFSQueue,
    MultiWordFFSQueue,
)

NUM_BUCKETS = 96  # <= one FFS word-width window for every queue under test
MAX_PRIORITY = NUM_BUCKETS - 1


class SortedListModel:
    """The unoptimised reference semantics: a sorted list with FIFO ties."""

    def __init__(self) -> None:
        self._entries: list[tuple[int, int, object]] = []
        self._seq = itertools.count()

    def enqueue(self, priority: int, item: object) -> None:
        bisect.insort(self._entries, (priority, next(self._seq), item))

    def enqueue_batch(self, pairs) -> int:
        for priority, item in pairs:
            self.enqueue(priority, item)
        return len(pairs)

    def extract_min(self):
        priority, _seq, item = self._entries.pop(0)
        return priority, item

    def extract_min_batch(self, n: int):
        batch = []
        while len(batch) < n and self._entries:
            batch.append(self.extract_min())
        return batch

    def extract_due(self, now: int, limit=None):
        released = []
        while self._entries and (limit is None or len(released) < limit):
            if self._entries[0][0] > now:
                break
            released.append(self.extract_min())
        return released

    def peek_min(self):
        priority, _seq, item = self._entries[0]
        return priority, item

    def remove(self, priority: int, item: object) -> bool:
        for index, entry in enumerate(self._entries):
            if entry[0] == priority and entry[2] is item:
                del self._entries[index]
                return True
        return False

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def empty(self) -> bool:
        return not self._entries


def queue_factories():
    spec = BucketSpec(num_buckets=NUM_BUCKETS)
    return {
        "ffs": lambda: FFSQueue(spec, word_width=NUM_BUCKETS),
        "multiword_ffs": lambda: MultiWordFFSQueue(spec, word_width=16),
        "hierarchical_ffs": lambda: HierarchicalFFSQueue(spec, word_width=8),
        "gradient": lambda: GradientQueue(spec),
        "bucket_heap": lambda: BucketedHeapQueue(spec),
        # Driven within the initial primary window, where cFFS is exact.
        "circular_ffs": lambda: CircularFFSQueue(spec, word_width=8),
    }


#: Which queue types expose remove().
SUPPORTS_REMOVE = {"hierarchical_ffs", "circular_ffs"}

priorities = st.integers(min_value=0, max_value=MAX_PRIORITY)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"), priorities),
        st.tuples(
            st.just("enqueue_batch"),
            st.lists(priorities, min_size=0, max_size=24),
        ),
        st.tuples(st.just("extract_min"), st.just(None)),
        st.tuples(st.just("extract_min_batch"), st.integers(0, 12)),
        st.tuples(
            st.just("extract_due"),
            st.tuples(priorities, st.one_of(st.none(), st.integers(0, 12))),
        ),
        st.tuples(st.just("peek_min"), st.just(None)),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=40)),
    ),
    min_size=0,
    max_size=80,
)


def _run_interleaving(name, factory, ops) -> None:
    queue = factory()
    model = SortedListModel()
    items = itertools.count()  # unique payloads so identity checks are exact
    live: list[tuple[int, object]] = []  # (priority, item) still enqueued

    for op, arg in ops:
        if op == "enqueue":
            item = next(items)
            queue.enqueue(arg, item)
            model.enqueue(arg, item)
            live.append((arg, item))
        elif op == "enqueue_batch":
            pairs = [(priority, next(items)) for priority in arg]
            assert queue.enqueue_batch(pairs) == model.enqueue_batch(pairs)
            live.extend(pairs)
        elif op == "extract_min":
            if model.empty:
                continue
            got = queue.extract_min()
            assert got == model.extract_min(), name
            live.remove(got)
        elif op == "extract_min_batch":
            got = queue.extract_min_batch(arg)
            assert got == model.extract_min_batch(arg), name
            for pair in got:
                live.remove(pair)
        elif op == "extract_due":
            now, limit = arg
            got = queue.extract_due(now, limit=limit)
            assert got == model.extract_due(now, limit=limit), name
            for pair in got:
                live.remove(pair)
        elif op == "peek_min":
            if model.empty:
                continue
            assert queue.peek_min() == model.peek_min(), name
        elif op == "remove":
            if name not in SUPPORTS_REMOVE or not live:
                continue
            priority, item = live[arg % len(live)]
            assert queue.remove(priority, item) is True, name
            assert model.remove(priority, item) is True
            live.remove((priority, item))

        # Shared invariants after every step.
        assert len(queue) == len(model), name
        assert queue.empty == model.empty, name

    # Final drain must agree element-for-element.
    while not model.empty:
        assert queue.extract_min() == model.extract_min(), name
    assert queue.empty, name
    try:
        queue.extract_min()
    except EmptyQueueError:
        pass
    else:  # pragma: no cover - would be a bug
        raise AssertionError(f"{name}: extract_min on empty queue did not raise")


@given(operations)
@settings(max_examples=120, deadline=None)
def test_queues_match_sorted_list_reference(ops):
    for name, factory in queue_factories().items():
        _run_interleaving(name, factory, ops)


@given(operations)
@settings(max_examples=60, deadline=None)
def test_free_list_reuse_is_invisible(ops):
    """Drain + refill cycles (maximum deque recycling) stay golden.

    Prefixing a full drain forces every bucket through the recycle path
    before the random interleaving runs, so a stale free-listed deque would
    surface as a mismatch.
    """
    for name in ("hierarchical_ffs", "circular_ffs"):
        factory = queue_factories()[name]
        queue = factory()
        # Occupy every bucket, then drain to push all deques through the
        # free list.
        queue.enqueue_batch([(p, p) for p in range(NUM_BUCKETS)])
        assert len(queue.extract_min_batch(NUM_BUCKETS)) == NUM_BUCKETS
        assert queue.empty
        # Now replay the random interleaving on the recycled structure.
        model = SortedListModel()
        items = itertools.count()
        for op, arg in ops:
            if op == "enqueue":
                item = next(items)
                queue.enqueue(arg, item)
                model.enqueue(arg, item)
            elif op == "enqueue_batch":
                pairs = [(priority, next(items)) for priority in arg]
                queue.enqueue_batch(pairs)
                model.enqueue_batch(pairs)
            elif op == "extract_due":
                now, limit = arg
                assert queue.extract_due(now, limit=limit) == model.extract_due(
                    now, limit=limit
                ), name
        while not model.empty:
            assert queue.extract_min() == model.extract_min(), name
        assert queue.empty, name
