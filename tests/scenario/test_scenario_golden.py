"""Golden equivalence: compiled figure specs == the hand-wired experiments.

The compiler must be a pure re-plumbing layer: binding a spec onto the
existing pieces may not change a single modelled number.  Three gates:

* the batching sweep of the compiled Figure 13 spec reproduces the
  committed ``BENCH_batching.json`` modelled cycles **byte-identically**
  (the artifact is the repo's perf-trajectory ledger; only the wall-clock
  fields are machine-dependent);
* a reduced-scale Figure 13 run from a spec equals ``run_figure13`` called
  by hand with the same parameters, series for series;
* a reduced-scale Figure 19 run from a spec equals ``run_figure19`` with
  the hand-built ``FabricExperimentConfig``, flow record for flow record.

Reduced scales keep tier-1 fast; the full-scale equivalents run in the
benchmark harnesses (which now *are* the compiled specs).
"""

import json
from pathlib import Path

from repro.bess import run_figure13
from repro.netsim import FabricConfig, FabricExperimentConfig, run_figure19
from repro.scenario import (
    PolicyTreeSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    compile_scenario,
    figure13_spec,
    figure19_spec,
)
from repro.scenario.figures import (
    run_batching_sweep_from_spec,
    run_figure13_from_spec,
)

ARTIFACT = Path(__file__).resolve().parent.parent.parent / "BENCH_batching.json"

#: The deterministic fields of a sweep cell (the rest is wall clock).
MODELLED_FIELDS = (
    "batch_size",
    "enqueue_cycles_per_packet",
    "drain_cycles_per_packet",
    "cycles_per_packet",
)


def test_figure13_sweep_matches_committed_artifact_byte_identically():
    committed = json.loads(ARTIFACT.read_text())
    sweep = run_batching_sweep_from_spec(figure13_spec(), rounds=1)
    assert sweep["batch_sizes"] == committed["batch_sizes"]
    assert sweep["workload"] == committed["workload"]
    assert set(sweep["queues"]) == set(committed["queues"])
    for name, by_size in committed["queues"].items():
        for size, cell in by_size.items():
            for field in MODELLED_FIELDS:
                assert sweep["queues"][name][size][field] == cell[field], (
                    f"{name} batch={size} {field} drifted from the artifact"
                )


def test_figure13_series_match_hand_wired_run():
    scale_flows = 200  # tier-1 scale; the benchmark runs the full 5k flows
    spec = ScenarioSpec(
        name="fig13-small",
        topology=TopologySpec(kind="bess"),
        policy=PolicyTreeSpec(num_buckets=512),
        traffic=TrafficSpec(num_flows=scale_flows, packet_sizes=(60, 1500)),
    )
    compiled = run_figure13_from_spec(spec)
    hand = run_figure13(num_flows=scale_flows, packet_sizes=[60, 1500])
    assert set(compiled) == set(hand)
    for label, series in hand.items():
        assert compiled[label].x == series.x
        assert compiled[label].y == series.y, f"{label} rates diverged"


def test_figure19_runs_match_hand_wired_config():
    loads = (0.5,)
    spec = ScenarioSpec(
        name="fig19-small",
        seed=19,
        topology=TopologySpec(kind="fabric", num_leaves=2, num_spines=2,
                              hosts_per_leaf=2),
        policy=PolicyTreeSpec(schemes=("dctcp", "pfabric", "pfabric_approx")),
        traffic=TrafficSpec(workload="websearch", num_flows=40, loads=loads),
    )
    result = compile_scenario(spec).run()
    hand = run_figure19(
        list(loads),
        config=FabricExperimentConfig(
            fabric=FabricConfig(num_leaves=2, num_spines=2, hosts_per_leaf=2),
            workload="websearch",
            num_flows=40,
            seed=19,
        ),
    )
    assert set(result.fabric) == set(hand)
    for scheme, runs in hand.items():
        for compiled_run, hand_run in zip(result.fabric[scheme], runs):
            assert compiled_run.load == hand_run.load
            assert compiled_run.drops == hand_run.drops
            assert len(compiled_run.flows) == len(hand_run.flows)
            for compiled_flow, hand_flow in zip(compiled_run.flows, hand_run.flows):
                assert compiled_flow.flow_id == hand_flow.flow_id
                assert compiled_flow.size_bytes == hand_flow.size_bytes
                assert compiled_flow.start_ns == hand_flow.start_ns
                assert compiled_flow.fct_seconds == hand_flow.fct_seconds
                assert compiled_flow.completed == hand_flow.completed


def test_canonical_figure_specs_validate_and_describe_the_benchmarks():
    fig13 = figure13_spec()
    assert fig13.topology.kind == "bess"
    assert fig13.traffic.num_flows == 5_000
    assert fig13.policy.num_buckets == 512  # the sweep's rank range
    assert fig13.assertions.batch_amortises_at == 8

    fig19 = figure19_spec()
    assert fig19.topology.kind == "fabric"
    assert fig19.seed == 19  # the committed benchmark's FlowWorkload seed
    assert fig19.traffic.loads == (0.2, 0.5, 0.8)
    assert fig19.assertions.fct_small_flow_advantage
    assert fig19.assertions.fct_approx_tolerance == 0.5
