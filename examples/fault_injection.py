#!/usr/bin/env python3
"""Fault injection walkthrough: break the runtime on purpose, watch it heal.

Four short acts over the same sharded, paced workload:

1. a seeded :class:`~repro.runtime.FaultPlan` crashes a shard mid-run — the
   supervision sweep re-homes its flows, salvages its mailbox, and the run
   completes with every packet delivered or attributed to a counted loss;
2. an overdue work-stealing lease is escalated by the watchdog and reclaimed
   through the victim;
3. the same faults as *data*: a ``[faults]`` block inside a scenario TOML,
   so a chaos schedule replays exactly from the scenario seed;
4. a real child process dies under the ProcessBackend and the parent's
   supervised restart replays its schedule.

Run:  python examples/fault_injection.py
"""

from repro.core.model import Packet
from repro.runtime import (
    FaultEvent,
    FaultPlan,
    FlowSharder,
    ProcessBackend,
    ShardedRuntime,
)
from repro.scenario import dump_toml, load_toml, run_scenario


def crash_and_recover_demo() -> None:
    print("=== Act 1: shard crash, supervised recovery ===")
    plan = FaultPlan([FaultEvent("shard_crash", target=0, at=2)])
    print(f"  plan: {plan.describe()}")
    runtime = ShardedRuntime(
        2,
        default_rate_bps=8e6,  # 100 B => 100 us spacing: the crash lands mid-run
        record_transmits=True,
        fault_plan=plan,
    )
    for i in range(60):
        runtime.submit(Packet(flow_id=i % 6, size_bytes=100))
    runtime.run()
    faults = runtime.fault_stats
    print(f"  crashes injected : {faults.crashes_injected}")
    print(f"  shards recovered : {faults.shards_recovered}")
    print(f"  flows re-homed   : {faults.flows_rehomed}")
    print(f"  mailbox salvaged : {faults.packets_salvaged} packets")
    print(f"  lost with state  : {faults.packets_lost} packets")
    total = runtime.transmitted + faults.packets_lost
    print(f"  accounting       : {runtime.transmitted} delivered + "
          f"{faults.packets_lost} counted lost = {total} of 60 submitted")
    for entry in runtime.telemetry().faults["recovery_log"]:
        latency = entry["recovered_at_ns"] - entry["failed_at_ns"]
        print(f"  recovery log     : {entry['kind']} on shard {entry['shard']} "
              f"repaired in {latency} simulated ns")


def lease_reclamation_demo() -> None:
    print("\n=== Act 2: overdue lease escalated and reclaimed ===")
    # One elephant flow pinned to shard 0 makes shard 1 a pure thief; a 1 ns
    # lease deadline makes any lease overdue at the first supervision sweep.
    sharder = FlowSharder(2)
    sharder.pin(5, 0)
    runtime = ShardedRuntime(
        2,
        sharder=sharder,
        default_rate_bps=10e9,
        quantum_ns=10_000,
        steal_enabled=True,
        steal_min_backlog=1,
        lease_deadline_ns=1,
        supervise_interval_ns=20_000,
    )
    runtime.submit_batch([Packet(flow_id=5, size_bytes=1500) for _ in range(40)])
    runtime.run()
    faults = runtime.fault_stats
    print(f"  deadline escalations : {faults.deadline_escalations}")
    print(f"  leases reclaimed     : {faults.leases_reclaimed}")
    print(f"  accounting           : {runtime.transmitted} delivered + "
          f"{faults.packets_lost} counted lost = 40 submitted")


def scenario_chaos_demo() -> None:
    print("\n=== Act 3: the fault schedule as scenario data ===")
    toml_text = """
name = "chaos-walkthrough"
seed = 7

[policy]
default_rate_bps = 1e9

[traffic]
num_flows = 16
total_packets = 800

[runtime]
shards = 4
stealing = true
steal_min_backlog = 1

[faults]
kinds = ["shard_crash", "shard_stall", "handoff_drop"]
events = 3
max_tick = 16
supervise_interval_ns = 100_000
"""
    spec = load_toml(toml_text)
    assert load_toml(dump_toml(spec)) == spec  # the block round-trips exactly
    result = run_scenario(spec)  # raises on any invariant violation
    faults = result.telemetry.faults
    print(f"  spec             : {spec.faults.kinds}, {spec.faults.events} events "
          f"drawn from seed {spec.seed}")
    print(f"  injected         : {faults['crashes_injected']} crashes, "
          f"{faults['stalls_injected']} stalls, "
          f"{faults['handoff_drops']} handoff drops")
    print(f"  recovered        : {faults['shards_recovered']} shards, "
          f"{faults['stalls_cleared']} stalls cleared")
    print(f"  conservation     : {result.transmitted} delivered + "
          f"{result.dropped} counted drops = {result.offered} offered "
          f"(asserted by the scenario's invariant net)")


def child_restart_demo() -> None:
    print("\n=== Act 4: a real worker process dies and is restarted ===")
    backend = ProcessBackend(
        restart_backoff_s=0.01,
        faults={0: ("child_crash", 2)},  # shard 0's child dies after burst 2
    )
    runtime = ShardedRuntime(
        2, default_rate_bps=1e9, quantum_ns=10_000, backend=backend
    )
    offered = 0
    for t in range(6):
        runtime.submit_at(
            t * 50_000, [Packet(flow_id=f, size_bytes=1500) for f in range(8)]
        )
        offered += 8
    runtime.run()
    (entry,) = backend.restart_log
    print(f"  restart log      : shard {entry['shard']} {entry['reason']} "
          f"(exit code {entry['exit_code']}) after acking "
          f"{entry['acked_bursts']} bursts; attempt {entry['attempt']}, "
          f"backoff {entry['backoff_s']:.2f}s")
    print(f"  replay           : {runtime.transmitted} of {offered} delivered "
          "after the fresh child re-ran the schedule")


if __name__ == "__main__":
    crash_and_recover_demo()
    lease_reclamation_demo()
    scenario_chaos_demo()
    child_restart_demo()
