"""Batched SPSC mailboxes: the ingress-to-shard handoff.

On real multi-core schedulers the dispatching core never touches another
core's queue structures directly — it posts packets into a single-producer /
single-consumer ring (a BESS queue module, a kernel per-CPU backlog) and the
owning core drains the ring in batches at the top of its scheduling loop.
That handoff is what keeps the hot data structures core-local.

:class:`Mailbox` models that ring: the ingress side pushes (bounded, with
drop accounting, like a real ring that overflows), the shard side drains one
batch per scheduling quantum.  In simulation both sides run on one thread,
so there is no locking — the SPSC discipline survives as the API shape:
exactly one producer calls ``push``/``push_batch`` and exactly one consumer
calls ``drain``.

Watermark backpressure
----------------------

A bounded ring that silently overflows is a loss point; a real ingress
pipeline instead *pauses the producer* before the ring fills — kernel NAPI
backlog limits, BESS queue occupancy thresholds, NIC flow control.  The
mailbox models that with a high/low watermark pair and hysteresis: when
occupancy rises to the high watermark the mailbox enters the *paused* state
(one ``stalls`` count, optional ``on_high`` callback); it leaves it only
when the consumer drains occupancy down to the low watermark (optional
``on_low`` callback).  The mailbox never blocks anything itself — producers
(the ingress cores of :mod:`repro.runtime.ingress`) consult :attr:`paused`
before pulling more work off their RX rings, and the ``on_low`` edge is the
wake-up that resumes a stalled ingress core without polling.

Edge callbacks fire only after the mutating operation has fully settled:
counters, peak occupancy and the paused flag all describe the completed
push/drain by the time ``on_high``/``on_low`` runs, so a callback (or
anything it re-enters) can snapshot ``stats`` and see a consistent state —
a requirement for execution backends whose producer and consumer interleave
differently than the single simulated thread.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Generic, Iterable, List, Optional, TypeVar

from ..core.queues.base import CounterStatsMixin

T = TypeVar("T")


@dataclass(slots=True)
class MailboxStats(CounterStatsMixin):
    """Counters kept by one mailbox.

    ``stalls`` counts high-watermark crossings (pause events), not paused
    ticks: one producer stall episode is one count however long it lasts.
    """

    pushed: int = 0
    dropped: int = 0
    drained: int = 0
    drain_calls: int = 0
    peak_occupancy: int = 0
    stalls: int = 0


class Mailbox(Generic[T]):
    """Bounded FIFO handoff between one producer and one consumer.

    Args:
        capacity: maximum resident items; ``None`` means unbounded (the
            simulation default — backpressure is then the runtime's problem,
            as it is for an unbounded qdisc backlog).
        high_watermark / low_watermark: occupancy thresholds of the paused
            state (see module docstring).  ``high_watermark`` alone defaults
            the low watermark to half of it.
        on_high / on_low: callbacks fired on the rising (pause) and falling
            (resume) watermark edges; both optional and settable later via
            :meth:`configure_watermarks`.
    """

    __slots__ = (
        "capacity",
        "stats",
        "high_watermark",
        "low_watermark",
        "on_high",
        "on_low",
        "_paused",
        "_items",
    )

    def __init__(
        self,
        capacity: Optional[int] = None,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        on_high: Optional[Callable[[], None]] = None,
        on_low: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.stats = MailboxStats()
        self._items: Deque[T] = deque()
        self.high_watermark: Optional[int] = None
        self.low_watermark: Optional[int] = None
        self.on_high: Optional[Callable[[], None]] = None
        self.on_low: Optional[Callable[[], None]] = None
        self._paused = False
        if high_watermark is not None or low_watermark is not None:
            self.configure_watermarks(high_watermark, low_watermark, on_high, on_low)

    # -- watermarks ----------------------------------------------------------

    def configure_watermarks(
        self,
        high: Optional[int],
        low: Optional[int] = None,
        on_high: Optional[Callable[[], None]] = None,
        on_low: Optional[Callable[[], None]] = None,
    ) -> None:
        """Install (or clear, with ``high=None``) the watermark pair.

        ``low`` defaults to ``high // 2``; at ``high == 1`` that is 0, i.e.
        the producer resumes only on a fully drained ring — the capacity-1
        hysteresis edge the tests pin down.  Callbacks already installed
        survive a threshold retune unless new ones are passed (retuning a
        live runtime mailbox must not sever the ingress resume wiring); to
        drop a callback, assign the attribute directly.
        """
        if on_high is not None:
            self.on_high = on_high
        if on_low is not None:
            self.on_low = on_low
        if high is None:
            self.high_watermark = self.low_watermark = None
            self._paused = False
            return
        if high <= 0:
            raise ValueError("high watermark must be positive")
        if self.capacity is not None and high > self.capacity:
            raise ValueError("high watermark cannot exceed capacity")
        if low is None:
            low = high // 2
        if low < 0 or low >= high:
            raise ValueError("low watermark must satisfy 0 <= low < high")
        self.high_watermark = high
        self.low_watermark = low
        edge = self._settle_high()
        if edge is not None:
            edge()

    @property
    def paused(self) -> bool:
        """True while occupancy sits inside the high/low hysteresis band."""
        return self._paused

    # Edge detection is split from edge *firing* so that every mutator can
    # settle all of its state — ring contents, counters, the paused flag —
    # before any callback runs.  Watermark callbacks re-enter the runtime
    # (on_low resumes stalled RX cores, which push more packets, which may
    # re-pause this very mailbox), so a callback that fired mid-mutation
    # would observe counters mid-update; execution backends that interleave
    # producer and consumer differently would then disagree on stall
    # accounting.  Contract: by the time on_high/on_low runs, pushed /
    # dropped / drained / peak_occupancy / stalls and ``paused`` all
    # describe the completed operation (``stats.snapshot()`` inside a
    # callback is always consistent).

    def _settle_high(self) -> Optional[Callable[[], None]]:
        """Settle the rising (pause) edge; returns the callback to fire last."""
        if (
            not self._paused
            and self.high_watermark is not None
            and len(self._items) >= self.high_watermark
        ):
            self._paused = True
            self.stats.stalls += 1
            return self.on_high
        return None

    def _settle_low(self) -> Optional[Callable[[], None]]:
        """Settle the falling (resume) edge; returns the callback to fire last."""
        if (
            self._paused
            and self.low_watermark is not None
            and len(self._items) <= self.low_watermark
        ):
            self._paused = False
            return self.on_low
        return None

    # -- producer side -----------------------------------------------------

    def push(self, item: T) -> bool:
        """Post one item; returns False (and counts a drop) when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._items.append(item)
        self.stats.pushed += 1
        if len(self._items) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(self._items)
        edge = self._settle_high()
        if edge is not None:
            edge()
        return True

    def push_batch(self, items: Iterable[T]) -> int:
        """Post a burst of items; returns how many were accepted.

        Items beyond the free space are dropped (tail drop), matching ring
        overflow semantics: earlier items of the burst are kept.  The whole
        burst lands with one ``deque.extend`` — the producer-side analogue of
        a ring's bulk write — instead of a Python-level loop of pushes.
        """
        if not isinstance(items, (list, tuple)):
            items = list(items)
        ring = self._items
        capacity = self.capacity
        offered = len(items)
        if capacity is None:
            take = offered
        else:
            take = min(offered, max(0, capacity - len(ring)))
            if take < offered:
                items = items[:take]
        ring.extend(items)
        stats = self.stats
        stats.pushed += take
        stats.dropped += offered - take
        occupancy = len(ring)
        if occupancy > stats.peak_occupancy:
            stats.peak_occupancy = occupancy
        edge = self._settle_high()
        if edge is not None:
            edge()
        return take

    # -- consumer side -----------------------------------------------------

    def drain(self, limit: Optional[int] = None) -> List[T]:
        """Remove and return up to ``limit`` items in FIFO order.

        One call per scheduling quantum is the intended pattern; the whole
        available batch is returned when ``limit`` is ``None``.  The full
        drain is one ``list()`` + ``clear()`` — the ring's bulk read.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        items = self._items
        if limit is None or limit >= len(items):
            batch = list(items)
            items.clear()
        else:
            popleft = items.popleft
            batch = [popleft() for _ in range(limit)]
        stats = self.stats
        stats.drained += len(batch)
        stats.drain_calls += 1
        edge = self._settle_low()
        if edge is not None:
            edge()
        return batch

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        """True when no items await the consumer."""
        return not self._items


__all__ = ["Mailbox", "MailboxStats"]
