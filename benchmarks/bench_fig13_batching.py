"""Figure 13: effect of per-flow batching and packet size (hClock vs Eiffel, 5k flows).

The paper's observations: without batching, 60 B packets cannot reach line
rate; per-flow batching (10 KB bursts) recovers most of it; with 1500 B
packets the schedulers are limited by their per-packet data-structure cost,
where Eiffel holds line rate and the heap implementation does not.
"""

from conftest import report

from repro.analysis import format_series
from repro.bess import BessExperimentConfig, run_figure13

NUM_FLOWS = 5000
CONFIG = BessExperimentConfig()


def run_experiment():
    return run_figure13(num_flows=NUM_FLOWS, config=CONFIG)


def test_fig13_batching_and_packet_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = format_series(
        f"Max rate vs packet size, {NUM_FLOWS} flows (batching on/off)",
        list(results.values()),
        x_label="packet bytes",
        y_label="Mbps",
    )
    report("Figure 13 — batching and packet size", text)

    def rate(series_name: str, size: int) -> float:
        series = results[series_name]
        return series.y[series.x.index(size)]

    benchmark.extra_info["rates_mbps"] = {
        name: dict(zip(series.x, series.y)) for name, series in results.items()
    }
    # Small packets without batching fall far short of line rate.
    assert rate("eiffel_no_batching", 60) < 0.8 * CONFIG.line_rate_bps / 1e6
    # Batching recovers small-packet throughput for Eiffel.
    assert rate("eiffel_batching", 60) > rate("eiffel_no_batching", 60)
    # At MTU size without batching Eiffel outperforms the heap baseline.
    assert rate("eiffel_no_batching", 1500) > rate("hclock_no_batching", 1500)
