"""Negative paths: every rejected spec shape raises a typed, field-naming error.

The contract under test is :func:`repro.scenario.validate`'s docstring —
every rejection is a :class:`ScenarioSpecError` subclass whose ``field``
attribute names the offending field in ``section.field`` form, raised
*eagerly* (at validate/compile/load time), never mid-experiment.

Each test pins three things: the error **type**, the ``.field`` payload,
and that the same shape is rejected through ``compile_scenario`` (the
compiler refuses to bind an invalid spec, it does not re-interpret it).
"""

import dataclasses

import pytest

from repro.scenario import (
    AssertionSpec,
    BackendIncompatibleError,
    IngressSpec,
    MalformedSpecError,
    OversubscribedError,
    PolicyTreeSpec,
    RuntimeSpec,
    ScenarioSpec,
    ScenarioSpecError,
    TopologySpec,
    TrafficSpec,
    UnknownNameError,
    compile_scenario,
    load_toml,
    validate,
)


def _reject(spec, error_type, field_name):
    """Assert the spec is rejected by validate() *and* compile_scenario()."""
    for entry in (validate, compile_scenario):
        with pytest.raises(error_type) as excinfo:
            entry(spec)
        assert excinfo.value.field == field_name
        assert isinstance(excinfo.value, ScenarioSpecError)
        # The message is actionable: it names the field on its own.
        assert field_name in str(excinfo.value)


def _runtime_spec(**overrides):
    sections = {
        name: overrides.pop(name)
        for name in ("topology", "policy", "traffic", "ingress", "runtime",
                     "assertions")
        if name in overrides
    }
    return ScenarioSpec(topology=TopologySpec(kind="runtime"), **sections,
                        **overrides)


# -- unknown names ------------------------------------------------------------


@pytest.mark.parametrize(
    "section, field_value, field_name",
    [
        ("policy", PolicyTreeSpec(queue="fifo"), "policy.queue"),
        ("runtime", RuntimeSpec(sharding="random"), "runtime.sharding"),
        ("runtime", RuntimeSpec(backend="gpu"), "runtime.backend"),
        ("ingress", IngressSpec(admission="red"), "ingress.admission"),
        ("traffic", TrafficSpec(pattern="bursty"), "traffic.pattern"),
    ],
)
def test_unknown_names_are_rejected_with_the_field(section, field_value, field_name):
    _reject(_runtime_spec(**{section: field_value}),
            UnknownNameError, field_name)


def test_unknown_topology_kind_is_rejected():
    _reject(ScenarioSpec(topology=TopologySpec(kind="quantum")),
            UnknownNameError, "topology.kind")


def test_unknown_fabric_scheme_is_rejected():
    spec = ScenarioSpec(
        topology=TopologySpec(kind="fabric"),
        policy=PolicyTreeSpec(schemes=("pfabric", "tcp_reno")),
    )
    _reject(spec, UnknownNameError, "policy.schemes")


def test_unknown_fabric_workload_is_rejected():
    spec = ScenarioSpec(
        topology=TopologySpec(kind="fabric"),
        traffic=TrafficSpec(workload="cachefollower"),
    )
    _reject(spec, UnknownNameError, "traffic.workload")


def test_unknown_bess_sweep_queue_is_rejected():
    spec = ScenarioSpec(
        topology=TopologySpec(kind="bess"),
        policy=PolicyTreeSpec(sweep_queues=("gradient", "skiplist")),
    )
    _reject(spec, UnknownNameError, "policy.sweep_queues")


# -- dangling cross-references ------------------------------------------------


def test_pacing_override_for_flow_outside_the_traffic_universe():
    spec = _runtime_spec(
        traffic=TrafficSpec(num_flows=8),
        policy=PolicyTreeSpec(flow_rates=((8, 1e9),)),  # flows are [0, 8)
    )
    _reject(spec, UnknownNameError, "policy.flow_rates")


def test_duplicate_pacing_override_is_rejected():
    spec = _runtime_spec(
        policy=PolicyTreeSpec(flow_rates=((3, 1e9), (3, 2e9))),
    )
    _reject(spec, MalformedSpecError, "policy.flow_rates")


def test_fct_advantage_assertion_needs_both_schemes():
    spec = ScenarioSpec(
        topology=TopologySpec(kind="fabric"),
        policy=PolicyTreeSpec(schemes=("pfabric",)),  # no dctcp anchor
        assertions=AssertionSpec(fct_small_flow_advantage=True),
    )
    _reject(spec, UnknownNameError, "assertions.fct_small_flow_advantage")


def test_fct_tolerance_assertion_needs_the_approx_scheme():
    spec = ScenarioSpec(
        topology=TopologySpec(kind="fabric"),
        policy=PolicyTreeSpec(schemes=("dctcp", "pfabric")),
        assertions=AssertionSpec(fct_approx_tolerance=0.5),
    )
    _reject(spec, UnknownNameError, "assertions.fct_approx_tolerance")


# -- oversubscription ---------------------------------------------------------


def test_admission_policy_without_rx_cores_is_dead_config():
    spec = _runtime_spec(ingress=IngressSpec(cores=0, admission="codel"))
    _reject(spec, UnknownNameError, "ingress.admission")


def test_rx_burst_larger_than_the_ring_is_oversubscribed():
    spec = _runtime_spec(
        ingress=IngressSpec(cores=1, rx_ring_capacity=64, rx_burst=128),
    )
    _reject(spec, OversubscribedError, "ingress.rx_burst")


def test_overload_with_no_backpressure_and_no_admission_is_oversubscribed():
    # 1e7 pps x 1500 B = 120 Gbps offered against 16 x 1 Gbps paced drain,
    # with both safety nets (backpressure, admission) disarmed.
    spec = _runtime_spec(
        traffic=TrafficSpec(offered_pps=1e7, packet_bytes=1500, num_flows=16),
        policy=PolicyTreeSpec(default_rate_bps=1e9),
        ingress=IngressSpec(cores=1, admission="none", backpressure=False),
    )
    _reject(spec, OversubscribedError, "ingress.admission")


def test_same_overload_is_accepted_once_backpressure_is_armed():
    spec = _runtime_spec(
        traffic=TrafficSpec(offered_pps=1e7, packet_bytes=1500, num_flows=16),
        policy=PolicyTreeSpec(default_rate_bps=1e9),
        ingress=IngressSpec(cores=1, admission="none", backpressure=True),
    )
    assert validate(spec) is spec


def test_fabric_load_above_one_is_oversubscribed():
    spec = ScenarioSpec(
        topology=TopologySpec(kind="fabric"),
        traffic=TrafficSpec(loads=(0.5, 1.2)),
    )
    _reject(spec, OversubscribedError, "traffic.loads")


# -- parallel-backend incompatibilities ---------------------------------------


@pytest.mark.parametrize("backend", ["process", "thread"])
@pytest.mark.parametrize(
    "runtime, ingress, field_name",
    [
        (dict(stealing=True), dict(), "runtime.stealing"),
        (dict(rebalance_interval_ns=1_000_000), dict(),
         "runtime.rebalance_interval_ns"),
        (dict(), dict(cores=2), "ingress.cores"),
    ],
)
def test_parallel_backends_reject_cross_shard_knobs(backend, runtime, ingress,
                                                    field_name):
    spec = _runtime_spec(
        runtime=RuntimeSpec(shards=2, backend=backend, **runtime),
        ingress=IngressSpec(**ingress),
    )
    _reject(spec, BackendIncompatibleError, field_name)


# -- malformed values ---------------------------------------------------------


def test_empty_name_is_rejected():
    _reject(_runtime_spec(name=""), MalformedSpecError, "name")


def test_boolean_seed_is_rejected():
    _reject(_runtime_spec(seed=True), MalformedSpecError, "seed")


@pytest.mark.parametrize(
    "section_kwargs, field_name",
    [
        (dict(runtime=RuntimeSpec(shards=0)), "runtime.shards"),
        (dict(runtime=RuntimeSpec(quantum_ns=-1)), "runtime.quantum_ns"),
        (dict(policy=PolicyTreeSpec(num_buckets=0)), "policy.num_buckets"),
        (dict(traffic=TrafficSpec(offered_pps=float("inf"))),
         "traffic.offered_pps"),
        (dict(traffic=TrafficSpec(num_flows=0)), "traffic.num_flows"),
        (dict(policy=PolicyTreeSpec(flow_rates=((0, -1.0),))),
         "policy.flow_rates[0]"),
        (dict(assertions=AssertionSpec(max_drop_fraction=1.5)),
         "assertions.max_drop_fraction"),
        (dict(assertions=AssertionSpec(max_stall_fraction=-0.1)),
         "assertions.max_stall_fraction"),
    ],
)
def test_out_of_range_values_are_rejected(section_kwargs, field_name):
    _reject(_runtime_spec(**section_kwargs), MalformedSpecError, field_name)


def test_empty_fabric_loads_are_rejected():
    spec = ScenarioSpec(topology=TopologySpec(kind="fabric"),
                        traffic=TrafficSpec(loads=()))
    _reject(spec, MalformedSpecError, "traffic.loads")


def test_single_host_fabric_is_rejected():
    spec = ScenarioSpec(
        topology=TopologySpec(kind="fabric", num_leaves=1, hosts_per_leaf=1),
    )
    _reject(spec, MalformedSpecError, "topology.hosts_per_leaf")


# -- the TOML loader's own rejections -----------------------------------------


def test_unparseable_toml_is_malformed():
    with pytest.raises(MalformedSpecError) as excinfo:
        load_toml("[traffic\npattern = ")
    assert excinfo.value.field == "<toml>"


def test_unknown_toml_section_is_rejected():
    with pytest.raises(UnknownNameError) as excinfo:
        load_toml('[trafic]\npattern = "zipf"\n')
    assert excinfo.value.field == "trafic"


def test_unknown_toml_key_names_its_section_dot_key_path():
    with pytest.raises(UnknownNameError) as excinfo:
        load_toml('[traffic]\npatern = "zipf"\n')
    assert excinfo.value.field == "traffic.patern"


def test_wrong_typed_toml_field_is_malformed():
    with pytest.raises(MalformedSpecError) as excinfo:
        load_toml('[runtime]\nshards = "four"\n')
    assert excinfo.value.field == "runtime.shards"


def test_malformed_flow_rates_pair_is_rejected_with_its_index():
    with pytest.raises(MalformedSpecError) as excinfo:
        load_toml("[policy]\nflow_rates = [[1, 1e9], [2]]\n")
    assert excinfo.value.field == "policy.flow_rates[1]"


def test_toml_loading_ends_with_the_semantic_validation_pass():
    # A syntactically perfect file with a semantic hole still gets the
    # typed, field-naming rejection — there is no "loaded but invalid" state.
    with pytest.raises(UnknownNameError) as excinfo:
        load_toml('[policy]\nqueue = "fifo"\n')
    assert excinfo.value.field == "policy.queue"


def test_every_rejection_type_shares_the_scenario_error_base():
    for error_type in (UnknownNameError, OversubscribedError,
                       BackendIncompatibleError, MalformedSpecError):
        assert issubclass(error_type, ScenarioSpecError)
        assert issubclass(error_type, ValueError)


def test_valid_default_spec_passes_and_is_returned_unchanged():
    spec = ScenarioSpec()
    assert validate(spec) is spec
    assert dataclasses.is_dataclass(spec) and dataclasses.asdict(spec)
