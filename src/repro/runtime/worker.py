"""One shard of the multi-core runtime: a core-local Eiffel queue + shaper.

A :class:`ShardWorker` is the simulated analogue of one CPU core running one
scheduler instance — what a per-CPU child of the ``mq`` qdisc or a pinned
BESS worker is in a real deployment.  It owns, privately:

* a batched SPSC :class:`~repro.runtime.mailbox.Mailbox` the ingress side
  posts packets into;
* a cFFS timestamp queue (PR 1's batched ``enqueue_batch`` /
  ``extract_due`` surface) holding the shard's shaped packets;
* per-flow pacing state (``SO_MAX_PACING_RATE``-style shaping transactions,
  the same stamping the Eiffel qdisc performs);
* a :class:`~repro.cpu.cost_model.CostModel` account charging the shard's
  data-structure work, so runtime telemetry can locate the bottleneck core.

Each scheduling quantum the owning runtime calls :meth:`ingest` (drain the
mailbox, stamp, one batched enqueue) and :meth:`drain_due` (one batched
release of everything whose timestamp passed).  The worker performs no
global coordination — all cross-shard decisions live in the sharder and the
runtime driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .mailbox import Mailbox
from ..core.model.packet import Packet
from ..core.model.transactions import RateLimit, ShapingTransaction
from ..core.queues import BucketSpec, CircularFFSQueue, IntegerPriorityQueue, QueueStats
from ..core.queues.base import CounterStatsMixin
from ..cpu import CostModel

#: Builds a shard's backing queue from a spec (cFFS by default).
QueueFactory = Callable[[BucketSpec], IntegerPriorityQueue]


@dataclass
class ShardWorkerStats(CounterStatsMixin):
    """Packet counters of one shard worker."""

    ingested: int = 0
    transmitted: int = 0
    ticks: int = 0
    idle_ticks: int = 0
    backlog_peak: int = 0


class ShardWorker:
    """A single-core scheduler instance owning one Eiffel queue + shaper.

    Args:
        shard_id: index of this shard within the runtime.
        flow_rates: per-flow pacing rates (bits/second).
        default_rate_bps: pacing rate for unconfigured flows (``None`` sends
            packets at their ingest time, i.e. pure work conservation).
        horizon_ns / num_buckets: shaping horizon and bucket count of the
            timestamp queue (paper defaults: 2 s over 20k buckets).
        queue_factory: alternative backing queue (ablations).
        mailbox_capacity: bound on the ingress mailbox (``None`` unbounded).
    """

    def __init__(
        self,
        shard_id: int,
        flow_rates: Optional[Dict[int, float]] = None,
        default_rate_bps: Optional[float] = None,
        horizon_ns: int = 2_000_000_000,
        num_buckets: int = 20_000,
        queue_factory: Optional[QueueFactory] = None,
        mailbox_capacity: Optional[int] = None,
    ) -> None:
        if horizon_ns <= 0 or num_buckets <= 0:
            raise ValueError("horizon_ns and num_buckets must be positive")
        self.shard_id = shard_id
        self.flow_rates = dict(flow_rates or {})
        self.default_rate_bps = default_rate_bps
        granularity = max(1, horizon_ns // num_buckets)
        self.granularity_ns = granularity
        factory = queue_factory or (lambda spec: CircularFFSQueue(spec))
        self.queue = factory(BucketSpec(num_buckets=num_buckets, granularity=granularity))
        self.mailbox: Mailbox[Packet] = Mailbox(capacity=mailbox_capacity)
        self.cost = CostModel()
        self.stats = ShardWorkerStats()
        self._queue_snapshot = QueueStats()
        self._shapers: Dict[int, ShapingTransaction] = {}
        self._backlog = 0

    # -- configuration -----------------------------------------------------

    def set_flow_rate(self, flow_id: int, rate_bps: float) -> None:
        """Configure the pacing rate of ``flow_id`` on this shard."""
        self.flow_rates[flow_id] = rate_bps
        self._shapers.pop(flow_id, None)

    def _shaper_for(self, flow_id: int) -> Optional[ShapingTransaction]:
        rate = self.flow_rates.get(flow_id, self.default_rate_bps)
        if rate is None:
            return None
        shaper = self._shapers.get(flow_id)
        if shaper is None:
            shaper = ShapingTransaction(f"shard{self.shard_id}-flow-{flow_id}", RateLimit(rate))
            self._shapers[flow_id] = shaper
        return shaper

    def release_shaper(self, flow_id: int) -> Optional[ShapingTransaction]:
        """Detach and return the flow's pacing state (``None`` if stateless).

        Used by the runtime when a flow migrates away: the destination shard
        adopts the transaction so ``_next_free_ns`` and the burst credit
        survive the move — otherwise every migration would silently regrant
        the flow a fresh burst and break its configured rate.
        """
        return self._shapers.pop(flow_id, None)

    def adopt_shaper(self, flow_id: int, shaper: ShapingTransaction) -> None:
        """Install pacing state handed over from the flow's previous shard."""
        self._shapers[flow_id] = shaper

    def gc_flow(self, flow_id: int, now_ns: int) -> bool:
        """Drop the flow's pacing state if it no longer matters.

        Returns True when the flow holds no state on this shard: either it
        never had a shaper, or its ``next_free_ns`` has passed, in which
        case a future re-created transaction stamps identically (an expired
        flow regains its initial burst credit, the same expiry semantics the
        FQ qdisc's flow GC has).  Charged like FQ's per-flow GC scan.
        """
        self.cost.charge("gc_scan")
        shaper = self._shapers.get(flow_id)
        if shaper is None:
            return True
        if shaper.next_free_ns <= now_ns:
            del self._shapers[flow_id]
            return True
        return False

    def _charge_queue_delta(self) -> None:
        delta = self.queue.stats.diff(self._queue_snapshot)
        self.cost.charge_queue_stats(delta.as_dict())
        self._queue_snapshot = self.queue.stats.snapshot()

    # -- the per-quantum worker loop ---------------------------------------

    def ingest(self, now_ns: int, limit: Optional[int] = None) -> int:
        """Drain the mailbox, stamp timestamps, one batched enqueue.

        Returns the number of packets moved into the shard's queue.
        """
        batch = self.mailbox.drain(limit)
        if not batch:
            return 0
        pairs = []
        for packet in batch:
            self.cost.charge("flow_lookup")
            shaper = self._shaper_for(packet.flow_id)
            send_at = now_ns if shaper is None else shaper.stamp(packet, now_ns)
            packet.metadata["send_at_ns"] = send_at
            packet.metadata["shard"] = self.shard_id
            pairs.append((send_at, packet))
        self.queue.enqueue_batch(pairs)
        self._backlog += len(pairs)
        self.stats.ingested += len(pairs)
        if self._backlog > self.stats.backlog_peak:
            self.stats.backlog_peak = self._backlog
        self._charge_queue_delta()
        return len(pairs)

    def drain_due(self, now_ns: int, limit: Optional[int] = None) -> List[Packet]:
        """Release every packet whose timestamp passed (one batched drain)."""
        drained = self.queue.extract_due(now_ns, limit=limit)
        released = [packet for _send_at, packet in drained]
        self._backlog -= len(released)
        self.stats.transmitted += len(released)
        self._charge_queue_delta()
        return released

    def tick(self, now_ns: int, ingest_limit: Optional[int], drain_limit: Optional[int]) -> List[Packet]:
        """One scheduling quantum: batched ingest then batched drain.

        Charges the fixed per-invocation cost a real worker loop pays
        (module call, prefetch, loop setup) on top of the per-packet work.
        """
        self.stats.ticks += 1
        self.cost.charge("batch_overhead")
        ingested = self.ingest(now_ns, ingest_limit)
        released = self.drain_due(now_ns, drain_limit)
        if not ingested and not released:
            self.stats.idle_ticks += 1
        return released

    # -- introspection -----------------------------------------------------

    @property
    def backlog(self) -> int:
        """Packets currently held in this shard's timestamp queue."""
        return self._backlog

    @property
    def pending(self) -> int:
        """Packets in flight on this shard (mailbox + queue)."""
        return self._backlog + len(self.mailbox)

    def soonest_deadline_ns(self, now_ns: int) -> Optional[int]:
        """Next time this shard has queue work (``None`` when queue empty)."""
        if self._backlog == 0:
            return None
        send_at, _packet = self.queue.peek_min()
        return max(send_at, now_ns)

    def queue_stats_snapshot(self) -> QueueStats:
        """Copy of the backing queue's operation counters."""
        return self.queue.stats.snapshot()


__all__ = ["QueueFactory", "ShardWorker", "ShardWorkerStats"]
