"""Scheduling and shaping transactions — the PIFO model plus Eiffel's extensions.

The PIFO programming model expresses a policy as:

* **scheduling transactions** — a ranking function plus one priority queue;
* **scheduling trees** — transactions arranged in a hierarchy;
* **shaping transactions** — rate limits attached to tree nodes.

Eiffel adds two primitives (Section 3.2.1):

* **per-flow ranking** (:class:`PerFlowSchedulingTransaction`) — a single
  PIFO orders *flows* rather than packets; an incoming packet may change the
  rank of every packet already enqueued for its flow (e.g. Longest Queue
  First, Figure 6).
* **on-dequeue ranking** — the rank of a flow may also be recomputed when a
  packet *leaves* (e.g. pFabric, Figure 14), which requires relocating the
  flow inside the PIFO; bucketed queues make that O(1).

Ranking functions receive the mutable :class:`~repro.core.model.packet.FlowState`
so policy code reads exactly like the paper's snippets
(``f.rank = f.len`` and friends).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from .packet import Flow, FlowTable, Packet
from .pifo import PIFOBlock, QueueFactory, default_queue_factory
from ..queues import BucketSpec

#: A per-packet ranking function: ``rank = fn(packet, context)``.
PacketRankFunction = Callable[[Packet, dict], int]

#: A per-flow ranking function: called as ``fn(flow, packet, context)`` and
#: expected to update ``flow.rank`` (and any other flow state) in place.
FlowRankFunction = Callable[[Flow, Optional[Packet], dict], None]


class SchedulingTransaction:
    """A per-packet scheduling transaction: rank function + one PIFO.

    This is the unmodified PIFO primitive: the rank of a packet is computed
    once, on enqueue, and packets already enqueued are never reordered.
    """

    def __init__(
        self,
        name: str,
        rank_function: PacketRankFunction,
        spec: BucketSpec,
        queue_factory: QueueFactory = default_queue_factory,
    ) -> None:
        self.name = name
        self.rank_function = rank_function
        self.pifo = PIFOBlock(spec, queue_factory, name=f"{name}.pifo")
        self.context: dict[str, Any] = {}

    def enqueue(self, packet: Packet) -> int:
        """Rank ``packet`` and push it; returns the assigned rank."""
        rank = self.rank_function(packet, self.context)
        packet.rank = rank
        self.pifo.push(rank, packet)
        return rank

    def enqueue_batch(self, packets: Iterable[Packet]) -> int:
        """Rank and push a batch through the PIFO's batched insert path."""
        pairs = []
        for packet in packets:
            rank = self.rank_function(packet, self.context)
            packet.rank = rank
            pairs.append((rank, packet))
        return self.pifo.push_batch(pairs)

    def dequeue(self) -> Optional[Packet]:
        """Pop the minimum-rank packet, or ``None`` when empty."""
        if self.pifo.empty:
            return None
        _rank, packet = self.pifo.pop()
        return packet

    def peek(self) -> Optional[Packet]:
        """The minimum-rank packet without removal, or ``None`` when empty."""
        if self.pifo.empty:
            return None
        _rank, packet = self.pifo.peek()
        return packet

    def __len__(self) -> int:
        return len(self.pifo)

    @property
    def empty(self) -> bool:
        """True when no packets are enqueued."""
        return self.pifo.empty


class PerFlowSchedulingTransaction:
    """Eiffel's per-flow primitive with optional on-dequeue re-ranking.

    A single PIFO orders *flow handles* by ``flow.rank``; each flow keeps its
    packets in FIFO order.  ``on_enqueue`` runs for every arriving packet and
    ``on_dequeue`` (when provided) for every departing packet; both may update
    ``flow.rank``, in which case the flow handle is relocated inside the PIFO.

    Args:
        name: transaction label.
        on_enqueue: flow ranking function run when a packet arrives.
        on_dequeue: optional flow ranking function run when a packet departs.
        spec: bucket layout of the flow-ordering PIFO.
        queue_factory: backing queue factory (cFFS by default).
        flow_weight: default weight assigned to newly observed flows.
    """

    def __init__(
        self,
        name: str,
        on_enqueue: FlowRankFunction,
        spec: BucketSpec,
        on_dequeue: Optional[FlowRankFunction] = None,
        queue_factory: QueueFactory = default_queue_factory,
        flow_weight: float = 1.0,
    ) -> None:
        self.name = name
        self.on_enqueue = on_enqueue
        self.on_dequeue = on_dequeue
        self.flow_weight = flow_weight
        self.pifo = PIFOBlock(spec, queue_factory, name=f"{name}.flows")
        self.flows = FlowTable()
        self.context: dict[str, Any] = {}
        self._packets = 0

    # -- enqueue ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> Flow:
        """Add ``packet`` to its flow, re-rank the flow, return the flow."""
        flow = self.flows.get(packet.flow_id, weight=self.flow_weight)
        flow.push(packet)
        self._packets += 1
        self.on_enqueue(flow, packet, self.context)
        self.pifo.reinsert(flow, flow.rank)
        return flow

    def enqueue_batch(self, packets: Iterable[Packet]) -> int:
        """Add a batch of packets, relocating each flow handle only once.

        ``on_enqueue`` still runs per packet (the ranking semantics are
        per-packet), but the PIFO relocation — the expensive part — happens
        once per *flow* per batch instead of once per packet, since only the
        flow's final rank matters when no dequeue interleaves.
        """
        touched: dict[int, Flow] = {}
        count = 0
        for packet in packets:
            flow = self.flows.get(packet.flow_id, weight=self.flow_weight)
            flow.push(packet)
            self._packets += 1
            self.on_enqueue(flow, packet, self.context)
            touched[flow.flow_id] = flow
            count += 1
        for flow in touched.values():
            self.pifo.reinsert(flow, flow.rank)
        return count

    # -- dequeue ------------------------------------------------------------------

    def dequeue(self) -> Optional[Packet]:
        """Pop the next packet of the minimum-rank flow.

        After the packet leaves, ``on_dequeue`` (if any) re-ranks the flow and
        the flow handle is either relocated (still backlogged) or removed
        from the PIFO (drained).
        """
        if self.pifo.empty:
            return None
        _rank, flow = self.pifo.pop()
        packet = flow.pop()
        self._packets -= 1
        if self.on_dequeue is not None:
            self.on_dequeue(flow, packet, self.context)
        if not flow.empty:
            self.pifo.push(flow.rank, flow)
        return packet

    def peek_flow(self) -> Optional[Flow]:
        """The minimum-rank flow, or ``None`` when idle."""
        if self.pifo.empty:
            return None
        _rank, flow = self.pifo.peek()
        return flow

    def __len__(self) -> int:
        return self._packets

    @property
    def empty(self) -> bool:
        """True when no packets are enqueued across all flows."""
        return self._packets == 0

    @property
    def active_flow_count(self) -> int:
        """Number of flows currently holding packets."""
        return len(self.pifo)


@dataclass(frozen=True)
class RateLimit:
    """A shaping constraint: a rate in bits/second applied to a policy node.

    ``burst_bytes`` allows an initial credit (token-bucket-like) so the first
    packet of an idle flow is not delayed.
    """

    rate_bps: float
    burst_bytes: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.burst_bytes < 0:
            raise ValueError("burst_bytes must be non-negative")

    def transmission_delay_ns(self, size_bytes: int) -> int:
        """Nanoseconds needed to serialise ``size_bytes`` at this rate."""
        return int(size_bytes * 8 / self.rate_bps * 1e9)


class ShapingTransaction:
    """Per-node shaping state: turns a rate limit into packet timestamps.

    The key result Eiffel borrows from Carousel is that *any* rate limit can
    be expressed as a per-packet transmission timestamp; the transaction
    therefore only tracks the "next free transmission time" for its node and
    stamps packets accordingly.  The timestamps from every shaping
    transaction in a hierarchy feed one shared
    :class:`~repro.core.model.shaper.DecoupledShaper`.
    """

    def __init__(self, name: str, limit: RateLimit) -> None:
        self.name = name
        self.limit = limit
        self._next_free_ns = 0
        self._credit_bytes = limit.burst_bytes

    @classmethod
    def restore(
        cls,
        name: str,
        limit: RateLimit,
        next_free_ns: int,
        credit_bytes: int,
    ) -> "ShapingTransaction":
        """Rebuild a transaction from externally held pacing state.

        The inverse of reading :attr:`next_free_ns` / :attr:`credit_bytes`:
        compact flow-state stores (:mod:`repro.runtime.flowstate`) keep the
        four numbers in dense columns and materialise a transaction only
        when the state has to travel — a migration handoff or a
        work-stealing lease.
        """
        transaction = cls(name, limit)
        transaction._next_free_ns = next_free_ns
        transaction._credit_bytes = credit_bytes
        return transaction

    def stamp(self, packet: Packet, now_ns: int) -> int:
        """Return the transmission timestamp for ``packet`` at time ``now_ns``.

        Consecutive packets are spaced by their serialisation delay at the
        configured rate; idle periods reset the spacing to "now".
        """
        if self._credit_bytes >= packet.size_bytes:
            self._credit_bytes -= packet.size_bytes
            send_at = max(now_ns, self._next_free_ns)
            self._next_free_ns = send_at
            return send_at
        send_at = max(now_ns, self._next_free_ns)
        self._next_free_ns = send_at + self.limit.transmission_delay_ns(
            packet.size_bytes
        )
        return send_at

    def reset(self, now_ns: int = 0) -> None:
        """Forget pacing state (used when a node is reconfigured)."""
        self._next_free_ns = now_ns
        self._credit_bytes = self.limit.burst_bytes

    @property
    def next_free_ns(self) -> int:
        """Earliest time the node can transmit its next packet.

        Once wall time passes this, the transaction carries no state that a
        freshly constructed one would not reproduce (modulo the initial
        burst credit) — which is what flow-state garbage collectors check.
        """
        return self._next_free_ns

    @property
    def credit_bytes(self) -> int:
        """Remaining burst credit (bytes that may send without spacing)."""
        return self._credit_bytes


__all__ = [
    "FlowRankFunction",
    "PacketRankFunction",
    "PerFlowSchedulingTransaction",
    "RateLimit",
    "SchedulingTransaction",
    "ShapingTransaction",
]
