"""Hierarchical FFS-based queue (Figure 3 / the PIQ structure).

When the number of buckets exceeds the width of one machine word, the
occupancy bitmap becomes a tree: each bit of a node summarises the occupancy
of one child node, and the children of leaf nodes are the buckets themselves.
Finding the minimum non-empty bucket walks the tree root-to-leaf applying FFS
at each level — O(log_w N) word operations, which is a small constant once
the queue is configured (six FFS operations cover a billion buckets with
64-bit words).

The tree is stored as a flat list of levels; level 0 is the root word(s) and
the last level has one bit per bucket.

Interpreter-level notes (the modelled costs are unchanged by all of this):

* the tree memoises the minimum occupied bucket, so a ``peek_min`` right
  after a drain returns without re-walking the levels — the walk is only
  repeated when the cached minimum was cleared;
* bucket FIFOs are allocated lazily and recycled through a free list when
  they drain, so a sparsely occupied queue with a large bucket count (20k
  buckets per shard in the runtime) neither preallocates thousands of deques
  nor throws emptied ones to the garbage collector;
* the batch paths hoist every repeated attribute lookup into locals and
  settle the stats counters once per batch.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Optional

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    PriorityOutOfRangeError,
    validate_priority,
)
from .ffs import DEFAULT_WORD_WIDTH


class FFSBitmapTree:
    """A hierarchical occupancy bitmap over ``num_buckets`` slots.

    The structure only stores per-level word arrays; it knows nothing about
    the elements themselves, which keeps it reusable by both the hierarchical
    queue and the circular queue (which swaps two trees).

    ``first_set`` memoises its result: the cached minimum stays valid until
    that bucket is cleared (or a smaller bucket is set, which updates it in
    O(1)), so repeated lookups between occupancy changes skip the
    root-to-leaf walk entirely.  The *reported* word count is always the
    tree depth — exactly what the uncached walk reads — so cost-model
    accounting is independent of cache hits.
    """

    __slots__ = (
        "num_buckets",
        "word_width",
        "levels",
        "depth",
        "_levels_up",
        "_cached_min",
        "_count",
    )

    def __init__(self, num_buckets: int, word_width: int = DEFAULT_WORD_WIDTH) -> None:
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if word_width < 2:
            raise ValueError("word_width must be at least 2")
        self.num_buckets = num_buckets
        self.word_width = word_width
        self.levels: list[list[int]] = []
        size = num_buckets
        # Build levels bottom-up: the last entry of ``levels`` is the leaf level.
        level_sizes = []
        while True:
            words = (size + word_width - 1) // word_width
            level_sizes.append(words)
            if words == 1:
                break
            size = words
        for words in reversed(level_sizes):
            self.levels.append([0] * words)
        self.depth = len(self.levels)
        #: Leaf-to-root view of the same level lists (shared objects), so the
        #: set/clear propagation loops avoid a ``reversed()`` iterator each call.
        self._levels_up = self.levels[::-1]
        self._cached_min = -1
        self._count = 0

    def set(self, bucket: int) -> int:
        """Mark ``bucket`` occupied; returns the number of words touched."""
        self._check(bucket)
        cached = self._cached_min
        if cached >= 0:
            if bucket < cached:
                self._cached_min = bucket
        elif self.levels[0][0] == 0:
            # The tree was empty: the new bucket is the minimum by definition.
            self._cached_min = bucket
        touched = 0
        index = bucket
        width = self.word_width
        for level in self._levels_up:
            word_index, bit = divmod(index, width)
            touched += 1
            word = level[word_index]
            mask = 1 << bit
            if word & mask:
                break
            level[word_index] = word | mask
            index = word_index
        return touched

    def clear(self, bucket: int) -> int:
        """Mark ``bucket`` empty, propagating up; returns words touched."""
        self._check(bucket)
        cached = self._cached_min
        if cached >= 0 and bucket <= cached:
            self._cached_min = -1
        touched = 0
        index = bucket
        width = self.word_width
        for level in self._levels_up:
            word_index, bit = divmod(index, width)
            touched += 1
            word = level[word_index] & ~(1 << bit)
            level[word_index] = word
            if word != 0:
                break
            index = word_index
        return touched

    def first_set(self) -> tuple[int, int]:
        """Return ``(bucket, words_scanned)`` for the minimum occupied bucket.

        Raises:
            EmptyQueueError: when no bucket is occupied.
        """
        cached = self._cached_min
        if cached >= 0:
            return cached, self.depth
        levels = self.levels
        if levels[0][0] == 0:
            raise EmptyQueueError("bitmap tree is empty")
        index = 0
        width = self.word_width
        for level in levels:
            word = level[index]
            # Inlined find_first_set: the occupancy invariant guarantees a
            # non-zero word on the walk, so no zero check is needed here.
            index = index * width + (word & -word).bit_length() - 1
        self._cached_min = index
        return index, self.depth

    def test(self, bucket: int) -> bool:
        """True when ``bucket`` is marked occupied."""
        self._check(bucket)
        word_index, bit = divmod(bucket, self.word_width)
        return bool((self.levels[-1][word_index] >> bit) & 1)

    @property
    def any(self) -> bool:
        """True when at least one bucket is occupied."""
        return self.levels[0][0] != 0

    def clear_all(self) -> None:
        """Reset every level to all-zero."""
        for level in self.levels:
            for i in range(len(level)):
                level[i] = 0
        self._cached_min = -1

    def _check(self, bucket: int) -> None:
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(
                f"bucket {bucket} outside bitmap tree of {self.num_buckets} buckets"
            )


class HierarchicalFFSQueue(IntegerPriorityQueue):
    """Bucketed integer priority queue indexed by an FFS bitmap tree.

    Operates over a *fixed* priority range.  The circular variant
    (:class:`repro.core.queues.circular_ffs.CircularFFSQueue`) reuses this
    structure for a moving range.

    Bucket FIFOs live behind a free list: ``_buckets[i]`` is ``None`` while
    bucket ``i`` is empty (the invariant the fast paths rely on), a deque is
    attached on first use, and a drained deque is recycled rather than
    re-allocated on the next enqueue.
    """

    __slots__ = ("word_width", "_tree", "_buckets", "_free")

    def __init__(self, spec: BucketSpec, word_width: int = DEFAULT_WORD_WIDTH) -> None:
        super().__init__(spec)
        self.word_width = word_width
        self._tree = FFSBitmapTree(spec.num_buckets, word_width)
        self._buckets: list[Optional[Deque[tuple[int, Any]]]] = [None] * spec.num_buckets
        self._free: list[Deque[tuple[int, Any]]] = []

    @property
    def depth(self) -> int:
        """Number of bitmap levels (the constant in O(log_w N))."""
        return self._tree.depth

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            raise PriorityOutOfRangeError(
                f"priority {priority} outside fixed range of HierarchicalFFSQueue"
            )
        bucket = self.spec.bucket_for(priority)
        stats = self.stats
        stats.enqueues += 1
        stats.bucket_lookups += 1
        entries = self._buckets[bucket]
        if entries is None:
            free = self._free
            entries = free.pop() if free else deque()
            self._buckets[bucket] = entries
            stats.word_scans += self._tree.set(bucket)
        entries.append((priority, item))
        self._size += 1

    def _recycle(self, bucket: int, entries: Deque[tuple[int, Any]]) -> None:
        """Return a drained bucket deque to the free list."""
        self._buckets[bucket] = None
        self._free.append(entries)

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty HierarchicalFFSQueue")
        bucket, scanned = self._tree.first_set()
        stats = self.stats
        stats.word_scans += scanned
        entries = self._buckets[bucket]
        entry = entries.popleft()
        if not entries:
            stats.word_scans += self._tree.clear(bucket)
            self._recycle(bucket, entries)
        stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty HierarchicalFFSQueue")
        bucket, scanned = self._tree.first_set()
        self.stats.word_scans += scanned
        return self._buckets[bucket][0]

    # -- batch operations -------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one bucket lookup and tree update per bucket.

        Pairs append straight into their bucket FIFOs; a key set tracks the
        distinct buckets for the amortised ``bucket_lookups`` charge.  On a
        mid-batch validation error the inserted prefix stays enqueued and
        counted, matching the base class's per-element default.
        """
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        hi = base + spec.horizon
        stats = self.stats
        buckets = self._buckets
        free = self._free
        tree = self._tree
        seen: set[int] = set()
        seen_add = seen.add
        count = 0
        scans = 0
        try:
            for pair in pairs:
                priority = pair[0]
                if type(priority) is not int:
                    priority = validate_priority(priority)
                    pair = (priority, pair[1])
                if priority < base or priority >= hi:
                    raise PriorityOutOfRangeError(
                        f"priority {priority} outside fixed range of HierarchicalFFSQueue"
                    )
                bucket = (priority - base) // granularity
                seen_add(bucket)
                entries = buckets[bucket]
                if entries is None:
                    entries = free.pop() if free else deque()
                    buckets[bucket] = entries
                    scans += tree.set(bucket)
                entries.append(pair)
                count += 1
        finally:
            stats.enqueues += count
            stats.bucket_lookups += len(seen)
            stats.word_scans += scans
            self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one root-to-leaf walk per bucket visited."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        buckets = self._buckets
        tree = self._tree
        scans = 0
        taken = 0
        while taken < n and self._size:
            bucket, scanned = tree.first_set()
            scans += scanned
            entries = buckets[bucket]
            space = n - taken
            if space >= len(entries):
                take = len(entries)
                batch.extend(entries)
                entries.clear()
                scans += tree.clear(bucket)
                self._recycle(bucket, entries)
            else:
                take = space
                popleft = entries.popleft
                for _ in range(take):
                    batch.append(popleft())
            taken += take
            self._size -= take
        stats = self.stats
        stats.word_scans += scans
        stats.dequeues += taken
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        released: list[tuple[int, Any]] = []
        buckets = self._buckets
        tree = self._tree
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        size = self._size
        scans = 0
        taken = 0
        while size and (limit is None or taken < limit):
            bucket, scanned = tree.first_set()
            scans += scanned
            entries = buckets[bucket]
            # Whole-bucket fast path: when the bucket's highest representable
            # priority has passed, every entry is due and one extend replaces
            # the per-element head checks.
            if (
                base + (bucket + 1) * granularity - 1 <= now
                and (limit is None or limit - taken >= len(entries))
            ):
                count = len(entries)
                taken += count
                size -= count
                released.extend(entries)
                entries.clear()
                scans += tree.clear(bucket)
                self._recycle(bucket, entries)
                continue
            while entries and entries[0][0] <= now:
                if limit is not None and taken >= limit:
                    break
                released.append(entries.popleft())
                taken += 1
                size -= 1
            if not entries:
                scans += tree.clear(bucket)
                self._recycle(bucket, entries)
                continue
            break
        stats = self.stats
        stats.word_scans += scans
        stats.dequeues += taken
        self._size = size
        return released

    def remove(self, priority: int, item: Any) -> bool:
        """Remove a specific ``(priority, item)`` pair in O(bucket length).

        Bucketed queues support cheap removal, which pFabric and hClock use
        heavily when a flow's rank changes (Section 2).  Returns True when
        the element was found and removed.  An empty bucket is ``None``
        behind the free list, so the miss path costs one load — no deque is
        scanned.
        """
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            return False
        bucket = self.spec.bucket_for(priority)
        queue = self._buckets[bucket]
        self.stats.bucket_lookups += 1
        if queue is None:
            return False
        for index, entry in enumerate(queue):
            if entry[0] == priority and entry[1] is item:
                del queue[index]
                self._size -= 1
                if not queue:
                    self.stats.word_scans += self._tree.clear(bucket)
                    self._recycle(bucket, queue)
                return True
        return False


__all__ = ["FFSBitmapTree", "HierarchicalFFSQueue"]
