"""Unit and behavioural tests for the hClock schedulers."""

import pytest

from repro.core.model import Packet
from repro.core.policies import EiffelHClockScheduler, HClockClass, HeapHClockScheduler

IMPLEMENTATIONS = [EiffelHClockScheduler, HeapHClockScheduler]

NS_PER_SEC = 1_000_000_000


def run_constant_load(scheduler, flows, duration_ns, link_bps, packet_bytes=1500):
    """Backlogged flows served at a fixed link rate; returns bytes per flow."""
    packet_ns = int(packet_bytes * 8 / link_bps * 1e9)
    served = {flow: 0 for flow in flows}
    # Keep every flow backlogged with a couple of packets at all times.
    for flow in flows:
        for _ in range(4):
            scheduler.enqueue(Packet(flow_id=flow, size_bytes=packet_bytes), now_ns=0)
    now = 0
    while now < duration_ns:
        packet = scheduler.dequeue(now_ns=now)
        if packet is not None:
            served[packet.flow_id] += packet.size_bytes
            scheduler.enqueue(
                Packet(flow_id=packet.flow_id, size_bytes=packet_bytes), now_ns=now
            )
        now += packet_ns
    return served


class TestHClockClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            HClockClass(reservation_bps=-1)
        with pytest.raises(ValueError):
            HClockClass(limit_bps=0)
        with pytest.raises(ValueError):
            HClockClass(share=0)


@pytest.mark.parametrize("scheduler_cls", IMPLEMENTATIONS)
class TestHClockBehaviour:
    def test_work_conserving_without_limits(self, scheduler_cls):
        scheduler = scheduler_cls()
        for flow in range(3):
            scheduler.enqueue(Packet(flow_id=flow), now_ns=0)
        drained = [scheduler.dequeue(now_ns=0) for _ in range(3)]
        assert all(packet is not None for packet in drained)
        assert scheduler.empty

    def test_limit_enforced(self, scheduler_cls):
        # One flow limited to 12 Mbps on a 100 Mbps link: served bytes over
        # 100 ms must be close to 150 kB, far below the ~1.2 MB line rate.
        scheduler = scheduler_cls()
        scheduler.configure_class(1, HClockClass(limit_bps=12e6))
        served = run_constant_load(
            scheduler, flows=[1], duration_ns=NS_PER_SEC // 10, link_bps=100e6
        )
        expected = 12e6 / 8 * 0.1
        assert served[1] <= expected * 1.3
        assert served[1] >= expected * 0.5

    def test_unlimited_flow_uses_full_link(self, scheduler_cls):
        scheduler = scheduler_cls()
        served = run_constant_load(
            scheduler, flows=[1], duration_ns=NS_PER_SEC // 10, link_bps=100e6
        )
        expected = 100e6 / 8 * 0.1
        assert served[1] >= expected * 0.8

    def test_shares_divide_capacity(self, scheduler_cls):
        scheduler = scheduler_cls()
        scheduler.configure_class(1, HClockClass(share=3.0))
        scheduler.configure_class(2, HClockClass(share=1.0))
        served = run_constant_load(
            scheduler, flows=[1, 2], duration_ns=NS_PER_SEC // 20, link_bps=100e6
        )
        ratio = served[1] / max(1, served[2])
        assert ratio > 1.8  # roughly 3:1, allow slack for discretisation

    def test_reservation_served_first(self, scheduler_cls):
        # Flow 1 has a reservation; flow 2 only a share.  Under contention
        # flow 1 must receive at least its reserved rate.
        scheduler = scheduler_cls()
        scheduler.configure_class(1, HClockClass(reservation_bps=20e6, share=1.0))
        scheduler.configure_class(2, HClockClass(share=10.0))
        served = run_constant_load(
            scheduler, flows=[1, 2], duration_ns=NS_PER_SEC // 10, link_bps=50e6
        )
        reserved_bytes = 20e6 / 8 * 0.1
        assert served[1] >= reserved_bytes * 0.7

    def test_non_work_conserving_when_all_limited(self, scheduler_cls):
        scheduler = scheduler_cls()
        scheduler.configure_class(1, HClockClass(limit_bps=1e6))
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        first = scheduler.dequeue(now_ns=0)
        assert first is not None  # first packet allowed immediately
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        # Immediately afterwards the flow exceeds its limit: nothing eligible.
        assert scheduler.dequeue(now_ns=1) is None
        # Once enough time passes (12 kbit at 1 Mbps = 12 ms) it becomes eligible.
        assert scheduler.dequeue(now_ns=20_000_000) is not None

    def test_next_event_reports_limit_tag(self, scheduler_cls):
        scheduler = scheduler_cls()
        scheduler.configure_class(1, HClockClass(limit_bps=1e6))
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        scheduler.dequeue(now_ns=0)
        scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        event = scheduler.next_event_ns()
        assert event is not None
        assert event > 0

    def test_pending_counter(self, scheduler_cls):
        scheduler = scheduler_cls()
        for _ in range(4):
            scheduler.enqueue(Packet(flow_id=1), now_ns=0)
        assert scheduler.pending == 4
        scheduler.dequeue(now_ns=0)
        assert scheduler.pending == 3
        assert scheduler.active_flows == 1


class TestImplementationAgreement:
    def test_served_rates_agree(self):
        def build(cls):
            scheduler = cls()
            scheduler.configure_class(1, HClockClass(share=2.0))
            scheduler.configure_class(2, HClockClass(share=1.0, limit_bps=20e6))
            return scheduler

        eiffel = run_constant_load(
            build(EiffelHClockScheduler), [1, 2], NS_PER_SEC // 20, 100e6
        )
        heap = run_constant_load(
            build(HeapHClockScheduler), [1, 2], NS_PER_SEC // 20, 100e6
        )
        for flow in (1, 2):
            assert heap[flow] > 0
            ratio = eiffel[flow] / heap[flow]
            assert 0.7 <= ratio <= 1.3
