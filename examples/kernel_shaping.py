#!/usr/bin/env python3
"""Use Case 1 in miniature: kernel shaping with FQ, Carousel and Eiffel qdiscs.

Runs the simulated kernel substrate with a few hundred paced flows (a scaled
version of the paper's 20k-flow, 24 Gbps EC2 experiment) and prints the CPU
cores each qdisc needs, split into system and softirq context — the data
behind Figures 9 and 10.

Run:  python examples/kernel_shaping.py
"""

from repro.kernel import ShapingExperimentConfig, run_shaping_experiment


def main() -> None:
    config = ShapingExperimentConfig(
        num_flows=300,
        aggregate_rate_bps=1.2e9,
        num_samples=6,
        sample_duration_ns=10_000_000,
    )
    print(
        f"{config.num_flows} paced flows, aggregate "
        f"{config.aggregate_rate_bps / 1e9:.1f} Gbps, "
        f"{config.num_samples} samples of {config.sample_duration_ns / 1e6:.0f} ms\n"
    )
    result = run_shaping_experiment(config)
    print(f"{'qdisc':>10s} {'median cores':>13s} {'system':>8s} {'softirq':>8s}")
    for name in ("fq", "carousel", "eiffel"):
        print(
            f"{name:>10s} {result.cores_cdf(name).median():13.3f} "
            f"{result.system_cores_cdf(name).median():8.3f} "
            f"{result.softirq_cores_cdf(name).median():8.3f}"
        )
    print(
        f"\nEiffel vs FQ/pacing: {result.speedup_over('fq'):.1f}x fewer cores"
        f"   |   Eiffel vs Carousel: {result.speedup_over('carousel'):.1f}x fewer cores"
    )
    print("(The paper reports 14x and 3x on real hardware at 24 Gbps.)")


if __name__ == "__main__":
    main()
