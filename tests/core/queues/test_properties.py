"""Property-based tests (hypothesis) for the queue data structures.

Core invariants:

* **conservation** — every enqueued element is extracted exactly once;
* **ordering** — exact queues drain in non-decreasing priority order;
* **equivalence** — all exact implementations produce the same drain order
  (priority sequence) as a sorted reference;
* **FIFO within a rank** — elements with equal priorities keep arrival order;
* **red-black invariants** survive arbitrary operation sequences;
* **Theorem 1** — the exact gradient queue's ``ceil(b/a)`` always identifies
  the extremal non-empty bucket.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.queues import (
    ApproximateGradientQueue,
    BinaryHeapQueue,
    BucketSpec,
    BucketedHeapQueue,
    CircularFFSQueue,
    GradientQueue,
    HierarchicalFFSQueue,
    RBTreeQueue,
    SortedListQueue,
)

NUM_BUCKETS = 256

priorities_lists = st.lists(
    st.integers(min_value=0, max_value=NUM_BUCKETS - 1), min_size=0, max_size=200
)


def exact_fixed_range_queues():
    return [
        HierarchicalFFSQueue(BucketSpec(num_buckets=NUM_BUCKETS)),
        GradientQueue(BucketSpec(num_buckets=NUM_BUCKETS)),
        BucketedHeapQueue(BucketSpec(num_buckets=NUM_BUCKETS)),
        BinaryHeapQueue(),
        RBTreeQueue(),
        SortedListQueue(),
    ]


@given(priorities_lists)
@settings(max_examples=60, deadline=None)
def test_all_exact_queues_drain_sorted(priorities):
    expected = sorted(priorities)
    for queue in exact_fixed_range_queues():
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == expected, type(queue).__name__


@given(priorities_lists)
@settings(max_examples=60, deadline=None)
def test_circular_ffs_matches_reference_within_two_windows(priorities):
    queue = CircularFFSQueue(BucketSpec(num_buckets=NUM_BUCKETS))
    for priority in priorities:
        queue.enqueue(priority, priority)
    drained = [p for p, _ in queue.extract_all()]
    assert drained == sorted(priorities)


@given(priorities_lists)
@settings(max_examples=60, deadline=None)
def test_approximate_queue_conserves_elements(priorities):
    queue = ApproximateGradientQueue(BucketSpec(num_buckets=NUM_BUCKETS), alpha=16)
    for index, priority in enumerate(priorities):
        queue.enqueue(priority, (priority, index))
    drained = sorted(p for p, _ in queue.extract_all())
    assert drained == sorted(priorities)
    assert queue.empty


@given(priorities_lists)
@settings(max_examples=40, deadline=None)
def test_fifo_within_equal_priorities(priorities):
    for queue in exact_fixed_range_queues():
        arrivals: dict[int, list[int]] = {}
        for sequence, priority in enumerate(priorities):
            queue.enqueue(priority, sequence)
            arrivals.setdefault(priority, []).append(sequence)
        drained: dict[int, list[int]] = {}
        for priority, sequence in queue.extract_all():
            drained.setdefault(priority, []).append(sequence)
        assert drained == arrivals, type(queue).__name__


operations = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"), st.integers(min_value=0, max_value=500)),
        st.tuples(st.just("dequeue"), st.just(0)),
    ),
    min_size=0,
    max_size=300,
)


@given(operations)
@settings(max_examples=50, deadline=None)
def test_rbtree_invariants_under_mixed_operations(ops):
    queue = RBTreeQueue()
    live = 0
    for op, value in ops:
        if op == "enqueue":
            queue.enqueue(value, value)
            live += 1
        elif live:
            queue.extract_min()
            live -= 1
    queue.check_invariants()
    assert len(queue) == live


@given(operations)
@settings(max_examples=50, deadline=None)
def test_gradient_theorem1_under_mixed_operations(ops):
    queue = GradientQueue(BucketSpec(num_buckets=512))
    reference: list[int] = []
    for op, value in ops:
        if op == "enqueue":
            bounded = value % 512
            queue.enqueue(bounded, bounded)
            reference.append(bounded)
        elif reference:
            priority, _ = queue.extract_min()
            assert priority == min(reference)
            reference.remove(priority)
    if reference:
        assert queue.peek_min()[0] == min(reference)
    else:
        assert queue.empty


@given(operations)
@settings(max_examples=50, deadline=None)
def test_heap_and_bucketed_heap_agree_under_mixed_operations(ops):
    heap = BinaryHeapQueue()
    bucketed = BucketedHeapQueue(BucketSpec(num_buckets=512))
    live = 0
    for op, value in ops:
        if op == "enqueue":
            bounded = value % 512
            heap.enqueue(bounded, bounded)
            bucketed.enqueue(bounded, bounded)
            live += 1
        elif live:
            assert heap.extract_min()[0] == bucketed.extract_min()[0]
            live -= 1
    assert len(heap) == len(bucketed) == live


@given(
    st.lists(
        st.integers(min_value=0, max_value=4 * NUM_BUCKETS), min_size=0, max_size=150
    )
)
@settings(max_examples=50, deadline=None)
def test_circular_ffs_conserves_beyond_horizon(priorities):
    # Priorities beyond the two windows lose fine-grained order (overflow
    # bucket) but must never be lost or duplicated.
    queue = CircularFFSQueue(BucketSpec(num_buckets=NUM_BUCKETS))
    for index, priority in enumerate(priorities):
        queue.enqueue(priority, index)
    drained_items = sorted(item for _, item in queue.extract_all())
    assert drained_items == list(range(len(priorities)))
