"""Statistics helpers: CDFs, percentiles, flow-completion-time metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values`` by linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


@dataclass
class Cdf:
    """Empirical CDF of a sample, with the accessors the paper's plots need."""

    values: List[float]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("CDF of empty sample")
        self.values = sorted(self.values)

    def at(self, x: float) -> float:
        """Fraction of samples ``<= x``."""
        count = 0
        for value in self.values:
            if value <= x:
                count += 1
            else:
                break
        return count / len(self.values)

    def quantile(self, q: float) -> float:
        """Value at cumulative fraction ``q`` (0-1)."""
        return percentile(self.values, q * 100)

    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def points(self, num: int = 50) -> List[tuple[float, float]]:
        """``num`` evenly spaced (value, cumulative fraction) points."""
        if num <= 1:
            raise ValueError("num must be at least 2")
        step = (len(self.values) - 1) / (num - 1)
        result = []
        for index in range(num):
            position = int(round(index * step))
            value = self.values[position]
            fraction = (position + 1) / len(self.values)
            result.append((value, fraction))
        return result


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p99 / min / max summary of a sample."""
    if not values:
        raise ValueError("summary of empty sequence")
    return {
        "mean": sum(values) / len(values),
        "median": percentile(values, 50),
        "p99": percentile(values, 99),
        "min": min(values),
        "max": max(values),
        "count": float(len(values)),
    }


def ideal_fct_seconds(
    size_bytes: int, link_bps: float, rtt_seconds: float
) -> float:
    """Ideal (unloaded) completion time of a flow: one RTT + serialisation.

    The pFabric evaluation normalises every measured FCT by the completion
    time the flow would achieve alone on an idle fabric: its bytes serialised
    once at the edge-link rate (store-and-forward pipelining hides the other
    hops) plus one base round-trip.
    """
    if size_bytes <= 0 or link_bps <= 0:
        raise ValueError("size_bytes and link_bps must be positive")
    serialisation = size_bytes * 8 / link_bps
    return rtt_seconds + serialisation


def normalized_fct(
    fct_seconds: float,
    size_bytes: int,
    link_bps: float,
    rtt_seconds: float,
) -> float:
    """Measured FCT divided by the flow's ideal FCT (>= 1 in a causal system)."""
    ideal = ideal_fct_seconds(size_bytes, link_bps, rtt_seconds)
    if ideal <= 0:
        raise ValueError("ideal FCT must be positive")
    return fct_seconds / ideal


__all__ = ["Cdf", "ideal_fct_seconds", "normalized_fct", "percentile", "summarize"]
