"""Million-flow state engine benchmark: dict-of-objects vs array columns.

``BENCH_hotpath.json`` tracks the per-packet interpreter cost and
``BENCH_sharding.json`` the modelled scaling curve — both at a few hundred
flows, where per-flow state is noise.  This harness tracks the axis the
flow-state engine exists for: **state cost at large flow populations**.

Two symmetric single-shard engines run the same presampled Zipf churn
sequence (touch = lookup-or-create + pacing stamp, with periodic kills):

* **dict** — the pre-engine representation: one Python object per flow
  (a ``ShapingTransaction`` + per-flow bookkeeping object in a dict), and
* **array** — the flow-state engine: a :class:`FlowTable` slot per flow
  with ``array``-backed columns and a :class:`PacingTable` for shaping.

Per population size (10k / 100k / 1M flows) the artifact records
**measured bytes/flow** (tracemalloc, deterministic per interpreter) and
**touch ops/sec** (best-of-rounds wall clock, recorded but never asserted
— house rule).  A **churn-storm scenario** — the full sharded runtime fed
Zipf-sampled flow ids from a 1.2M-id universe with incremental GC — pins
its deterministic modelled cycles/packet as the CI guard, exactly like
the other benchmark artifacts.

Run standalone (``python benchmarks/bench_megaflow.py``) to regenerate
``BENCH_megaflow.json``; the pytest entry point runs the smoke-sized gate
(10k/100k cells + churn-storm smoke) and checks the committed 1M cell.
"""

import gc
import json
import time
import tracemalloc
from pathlib import Path

from conftest import report

from repro.core.model.packet import Packet
from repro.core.model.transactions import RateLimit, ShapingTransaction
from repro.runtime import PacingTable, ShardedRuntime
from repro.runtime.flowstate import _FIB, _I64_MAX, _MASK64
from repro.traffic import ZipfFlowSampler

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_megaflow.json"

FLOW_COUNTS_FULL = [10_000, 100_000, 1_000_000]
FLOW_COUNTS_SMOKE = [10_000, 100_000]
RATE_BPS = 10e9
PACKET_BYTES = 1500
TOUCH_OPS = 200_000
TOUCH_OPS_SMOKE = 40_000
KILL_EVERY = 8  # every 8th touch kills its flow: constant birth/death churn
ZIPF_SKEW = 1.1
WALL_CLOCK_ROUNDS = 3

# Churn-storm scenario: the full sharded runtime under million-flow churn.
STORM_UNIVERSE = 1_200_000
STORM_SHARDS = 4
STORM_PACKETS = 40_000
STORM_PACKETS_SMOKE = 4_000
STORM_QUANTUM_NS = 10_000
STORM_BURST = 128
STORM_BURST_QUANTA = 8
STORM_GC_INTERVAL = 256
STORM_GC_SWEEP_LIMIT = 512

MIN_BYTES_RATIO = 4.0  # the artifact's reason to exist


class DictEngine:
    """Baseline: the engine's predecessor layout in this repo.

    One ``ShapingTransaction`` object per flow in a dict, plus per-concern
    bookkeeping dicts — exactly the state the flow-state engine replaced
    (``ShardWorker._shapers`` and ``ShardedRuntime._flow_home`` /
    ``_flow_pending`` in the pre-engine tree).
    """

    name = "dict"

    def __init__(self) -> None:
        self.shapers: dict = {}
        self.home: dict = {}
        self.pending: dict = {}
        self.last_seen: dict = {}
        self._packet = Packet(flow_id=0, size_bytes=PACKET_BYTES)

    def touch(self, flow_id: int, size_bytes: int, now_ns: int) -> int:
        shaper = self.shapers.get(flow_id)
        if shaper is None:
            shaper = ShapingTransaction(f"flow-{flow_id}", RateLimit(RATE_BPS))
            self.shapers[flow_id] = shaper
            self.home[flow_id] = 0
        self.pending[flow_id] = self.pending.get(flow_id, 0) + 1
        self.last_seen[flow_id] = now_ns
        packet = self._packet
        packet.flow_id = flow_id
        packet.size_bytes = size_bytes
        return shaper.stamp(packet, now_ns)

    def kill(self, flow_id: int) -> None:
        self.shapers.pop(flow_id, None)
        self.home.pop(flow_id, None)
        self.pending.pop(flow_id, None)
        self.last_seen.pop(flow_id, None)

    def __len__(self) -> int:
        return len(self.shapers)


class ArrayEngine(PacingTable):
    """The flow-state engine: dense slots, array columns, no per-flow objects.

    Subclasses :class:`PacingTable` and fuses the whole per-packet datapath
    (probe + create + stamp + bookkeeping columns) into one flat method —
    the columnar representation's structural advantage: state in plain
    arrays can be inlined into the caller's frame, where the object
    baseline *must* cross the ``shaper.stamp`` call boundary to reach
    state hidden behind the object interface.  The stamp arithmetic
    mirrors ``PacingTable.touch`` / ``ShapingTransaction.stamp``;
    ``_check_engines_agree`` replays a churn slice through both engines
    and asserts identical timestamps so this copy cannot drift silently.
    """

    name = "array"

    def __init__(self) -> None:
        super().__init__(shard_id=0)
        self.home = self.add_column("home", "i", 0)
        self.pending = self.add_column("pending", "i", 0)
        self.last_seen = self.add_column("last_seen", "q", 0)

    def touch(self, flow_id: int, size_bytes: int, now_ns: int) -> int:
        index = self._index
        key = self.key
        mask = self._mask
        cell = ((flow_id * _FIB) & _MASK64) >> self._shift
        reuse = -1
        while True:
            slot = index[cell]
            if slot == -1:  # EMPTY
                slot = self._alloc_slot(flow_id)
                if reuse >= 0:
                    index[reuse] = slot
                    self._tombs -= 1
                else:
                    index[cell] = slot
                    self._fill += 1
                if self._fill * 3 >= self._cells * 2:
                    self._rehash()
                self._rate[slot] = RATE_BPS
                break
            if slot == -2:  # TOMB
                if reuse < 0:
                    reuse = cell
            elif key[slot] == flow_id:
                break
            cell = (cell + 1) & mask
        self.pending[slot] += 1
        self.last_seen[slot] = now_ns
        credit_col = self._credit
        next_free_col = self._next_free
        credit = credit_col[slot]
        next_free = next_free_col[slot]
        if credit >= size_bytes:
            credit_col[slot] = credit - size_bytes
            send_at = now_ns if now_ns > next_free else next_free
            next_free_col[slot] = send_at
            return send_at
        send_at = now_ns if now_ns > next_free else next_free
        release = send_at + int(size_bytes * 8 / self._rate[slot] * 1e9)
        next_free_col[slot] = release if release < _I64_MAX else _I64_MAX
        return send_at

    kill = PacingTable.remove  # direct alias: no wrapper frame


def _check_engines_agree(num_ops: int = 2_000, universe: int = 400) -> None:
    """Both engines must emit identical timestamps for the same churn."""
    dict_engine = DictEngine()
    array_engine = ArrayEngine()
    flow_ids = _zipf_ids(universe, num_ops, seed=3)
    for index, flow_id in enumerate(flow_ids):
        expected = dict_engine.touch(flow_id, PACKET_BYTES, index)
        got = array_engine.touch(flow_id, PACKET_BYTES, index)
        assert got == expected, (flow_id, index, got, expected)
        if index % KILL_EVERY == KILL_EVERY - 1:
            dict_engine.kill(flow_id)
            array_engine.kill(flow_id)
    assert len(array_engine) == len(dict_engine)


ENGINES = [DictEngine, ArrayEngine]


def _zipf_ids(num_flows: int, num_ops: int, seed: int = 7) -> list:
    """One deterministic churn sequence both engines replay identically."""
    return ZipfFlowSampler(num_flows, skew=ZIPF_SKEW, seed=seed).sample_flows(num_ops)


def _measure_bytes_per_flow(engine_cls, num_flows: int) -> float:
    """tracemalloc delta of holding ``num_flows`` live flows, per flow."""
    gc.collect()
    tracemalloc.start()
    try:
        base = tracemalloc.get_traced_memory()[0]
        engine = engine_cls()
        for flow_id in range(num_flows):
            engine.touch(flow_id, PACKET_BYTES, flow_id)
        assert len(engine) == num_flows
        held = tracemalloc.get_traced_memory()[0] - base
    finally:
        tracemalloc.stop()
    del engine
    return held / num_flows


def _measure_touch_ops(engine_cls, num_flows: int, flow_ids: list, rounds: int) -> float:
    """Best-of-rounds churn throughput against a resident population.

    The engine is pre-populated to the cell's flow count (untimed) before
    the clock starts: the claim under test is packet-rate state access
    *while holding N flows*, not building up from empty.  The timed loop
    then replays the Zipf sequence — touch every id, kill every 8th (the
    killed flow is recreated on its next appearance, so the population
    holds and the create/recycle path stays on the clock).
    """
    best = float("inf")
    for _ in range(max(1, rounds)):
        engine = engine_cls()
        touch = engine.touch
        kill = engine.kill
        for flow_id in range(num_flows):
            touch(flow_id, PACKET_BYTES, 0)
        start = time.perf_counter()
        for index, flow_id in enumerate(flow_ids):
            touch(flow_id, PACKET_BYTES, index)
            if index % KILL_EVERY == KILL_EVERY - 1:
                kill(flow_id)
        best = min(best, time.perf_counter() - start)
    return len(flow_ids) / max(best, 1e-9)


def _measure_cell(num_flows: int, num_ops: int, rounds: int) -> dict:
    flow_ids = _zipf_ids(num_flows, num_ops)
    cell = {"num_flows": num_flows, "touch_ops": num_ops}
    for engine_cls in ENGINES:
        cell[engine_cls.name] = {
            "bytes_per_flow": _measure_bytes_per_flow(engine_cls, num_flows),
            "touch_ops_per_sec": _measure_touch_ops(
                engine_cls, num_flows, flow_ids, rounds
            ),
        }
    cell["bytes_ratio"] = (
        cell["dict"]["bytes_per_flow"] / cell["array"]["bytes_per_flow"]
    )
    cell["ops_ratio"] = (
        cell["array"]["touch_ops_per_sec"] / cell["dict"]["touch_ops_per_sec"]
    )
    return cell


def _drive_churn_storm(num_packets: int) -> dict:
    """The sharded runtime under Zipf churn over a 1.2M-id universe."""
    flow_ids = ZipfFlowSampler(STORM_UNIVERSE, skew=1.05, seed=11).sample_flows(
        num_packets
    )
    runtime = ShardedRuntime(
        STORM_SHARDS,
        default_rate_bps=RATE_BPS,
        quantum_ns=STORM_QUANTUM_NS,
        batch_per_quantum=64,
        record_transmits=False,
        gc_interval_packets=STORM_GC_INTERVAL,
        gc_sweep_limit=STORM_GC_SWEEP_LIMIT,
    )
    simulator = runtime.simulator
    for index in range(0, len(flow_ids), STORM_BURST):
        chunk = flow_ids[index : index + STORM_BURST]
        when_ns = (index // STORM_BURST) * STORM_BURST_QUANTA * STORM_QUANTUM_NS

        def offer(chunk=chunk) -> None:
            runtime.submit_batch(
                [
                    Packet(flow_id=flow_id, size_bytes=PACKET_BYTES)
                    for flow_id in chunk
                ]
            )

        simulator.schedule_at(when_ns, offer)
    start = time.perf_counter()
    runtime.run()
    elapsed = time.perf_counter() - start
    telemetry = runtime.telemetry()
    assert telemetry.transmitted == num_packets
    flow_state = dict(telemetry.flow_state)
    return {
        "num_packets": num_packets,
        "universe": STORM_UNIVERSE,
        "num_shards": STORM_SHARDS,
        "gc_sweep_limit": STORM_GC_SWEEP_LIMIT,
        "wall_ops_per_sec": num_packets / max(elapsed, 1e-9),
        "cycles_per_packet": telemetry.total_cycles / telemetry.transmitted,
        "flow_state": flow_state,
    }


def run_megaflow_bench(
    flow_counts: list = FLOW_COUNTS_FULL,
    num_ops: int = TOUCH_OPS,
    storm_packets: int = STORM_PACKETS,
    rounds: int = WALL_CLOCK_ROUNDS,
) -> dict:
    _check_engines_agree()  # the fused datapath must match the baseline
    cells = {
        str(num_flows): _measure_cell(num_flows, num_ops, rounds)
        for num_flows in flow_counts
    }
    storm = _drive_churn_storm(storm_packets)
    # The smoke block is what CI asserts against: the same deterministic
    # storm at smoke size, so the guard is exact and machine-independent.
    if storm_packets == STORM_PACKETS_SMOKE:
        smoke_cycles = storm["cycles_per_packet"]
    else:
        smoke_cycles = _drive_churn_storm(STORM_PACKETS_SMOKE)["cycles_per_packet"]
    return {
        "benchmark": "megaflow_state_engine",
        "description": (
            "Flow-state cost at scale: dict-of-objects baseline vs the "
            "array-backed engine replaying one presampled Zipf churn "
            "sequence (touch = lookup-or-create + pacing stamp, kill every "
            f"{KILL_EVERY}th touch).  bytes/flow is a tracemalloc "
            "measurement; ops/sec is best-of-rounds wall clock, recorded "
            "but never asserted.  The churn-storm block runs the full "
            "sharded runtime over a 1.2M-id universe with incremental GC "
            "and pins its deterministic modelled cycles/packet for CI."
        ),
        "workload": {
            "flow_counts": flow_counts,
            "touch_ops": num_ops,
            "kill_every": KILL_EVERY,
            "zipf_skew": ZIPF_SKEW,
            "rate_bps": RATE_BPS,
            "packet_bytes": PACKET_BYTES,
            "wall_clock_rounds": rounds,
        },
        "cells": cells,
        "churn_storm": storm,
        "smoke_storm_cycles_per_packet": smoke_cycles,
    }


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_results(results: dict) -> str:
    lines = [
        f"{'flows':<10}{'dict B/flow':<13}{'array B/flow':<14}{'ratio':<8}"
        f"{'dict Mops/s':<13}{'array Mops/s':<14}{'ops ratio':<10}"
    ]
    for num_flows, cell in sorted(
        results["cells"].items(), key=lambda item: int(item[0])
    ):
        lines.append(
            f"{num_flows:<10}{cell['dict']['bytes_per_flow']:<13.1f}"
            f"{cell['array']['bytes_per_flow']:<14.1f}"
            f"{cell['bytes_ratio']:<8.2f}"
            f"{cell['dict']['touch_ops_per_sec'] / 1e6:<13.3f}"
            f"{cell['array']['touch_ops_per_sec'] / 1e6:<14.3f}"
            f"{cell['ops_ratio']:<10.2f}"
        )
    storm = results["churn_storm"]
    state = storm["flow_state"]
    lines.append("")
    lines.append(
        f"churn storm: {storm['num_packets']} pkts over {storm['universe']} ids, "
        f"{storm['num_shards']} shards, sweep limit {storm['gc_sweep_limit']}: "
        f"{storm['cycles_per_packet']:.1f} cycles/pkt, "
        f"{storm['wall_ops_per_sec'] / 1e6:.3f} Mops/s wall"
    )
    lines.append(
        f"  live flows {state['live_flows']} (slot limit {state['slot_limit']}), "
        f"state {state['memory_bytes'] / 1024:.0f} KiB, "
        f"gc reclaimed {state['gc_reclaimed']} in {state['gc_sweeps']} sweeps"
    )
    return "\n".join(lines)


# -- pytest entry points ------------------------------------------------------


def test_megaflow_smoke_guard(benchmark):
    """Re-measure the smoke cells and hold the committed artifact's gates.

    bytes/flow is allocation-accounting, not timing: the ≥4x advantage must
    reproduce on any machine.  Wall-clock ops/sec is reported, never
    asserted.  The churn-storm modelled cycles are deterministic and must
    match the committed artifact exactly, like every other BENCH guard.
    """
    committed = json.loads(ARTIFACT_PATH.read_text())
    results = benchmark.pedantic(
        run_megaflow_bench,
        kwargs={
            "flow_counts": FLOW_COUNTS_SMOKE,
            "num_ops": TOUCH_OPS_SMOKE,
            "storm_packets": STORM_PACKETS_SMOKE,
            "rounds": 1,
        },
        rounds=1,
        iterations=1,
    )
    report("Megaflow smoke — dict baseline vs array engine", _format_results(results))
    benchmark.extra_info["bytes_ratio"] = {
        num_flows: cell["bytes_ratio"] for num_flows, cell in results["cells"].items()
    }

    for num_flows, cell in results["cells"].items():
        assert cell["bytes_ratio"] >= MIN_BYTES_RATIO, (
            f"array engine lost its memory advantage at {num_flows} flows: "
            f"{cell['bytes_ratio']:.2f}x < {MIN_BYTES_RATIO}x"
        )
    observed = results["smoke_storm_cycles_per_packet"]
    expected = committed["smoke_storm_cycles_per_packet"]
    assert abs(observed - expected) < 1e-9, (
        f"churn-storm modelled cycles/packet drifted: {expected} (committed) "
        f"-> {observed} (this tree); regenerate BENCH_megaflow.json only for "
        "deliberate cost-model or workload changes"
    )

    # The committed full-size artifact must hold the headline claims at the
    # population the engine exists for: at 1M flows the array engine beats
    # the dict baseline >=4x on bytes/flow AND on ops/sec (the dict side
    # pointer-chases millions of scattered objects there; the engine walks
    # dense arrays).  At 10k everything fits in cache and C-speed dicts are
    # at their best — those cells are recorded with only a coarse floor
    # against catastrophic regressions.
    million = committed["cells"]["1000000"]
    assert million["bytes_ratio"] >= MIN_BYTES_RATIO
    assert million["ops_ratio"] >= 1.0
    for cell in committed["cells"].values():
        assert cell["ops_ratio"] >= 0.8


if __name__ == "__main__":
    bench = run_megaflow_bench()
    artifact = write_artifact(bench)
    print(_format_results(bench))
    print(f"\nwrote {artifact}")
