"""Common interfaces for Eiffel's bucketed integer priority queues.

The paper's central observation (Section 2) is that packet ranks are
integers that, at any point in time, fall within a limited range of values.
All queues in this package therefore share the same contract:

* elements are enqueued with an integer *priority* (rank),
* elements with the same priority are kept in FIFO order inside a bucket,
* ``extract_min`` / ``peek_min`` return the element with the smallest rank,
* a queue may optionally support a *moving range* of priorities (circular
  queues), in which case priorities ahead of the current window are accepted
  and buffered rather than rejected.

Every queue also records an :class:`~repro.cpu.cost_model.CycleAccount`-style
operation trace through lightweight counters in :class:`QueueStats`, so the
benchmark harness can compare both wall-clock time and modelled CPU cycles.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional


class QueueError(Exception):
    """Base class for queue-related errors."""


class EmptyQueueError(QueueError):
    """Raised when extracting from an empty queue."""


class PriorityOutOfRangeError(QueueError):
    """Raised when a priority cannot be represented by the queue."""


class CounterStatsMixin:
    """Shared arithmetic for counter dataclasses (reflects over the fields).

    Shared by :class:`QueueStats` and the runtime-layer counter dataclasses
    (mailbox, sharding, stealing, shard-worker stats) so the snapshot /
    delta / merge surface stays in one place: consumers that charge
    cost-model deltas take a :meth:`snapshot` before a phase and
    :meth:`diff` against it afterwards instead of hand-rolling dict
    arithmetic.
    """

    # Counter dataclasses opt into ``slots=True``; an empty-slots mixin keeps
    # their instances __dict__-free (one per queue/shard on the hot path).
    __slots__ = ()

    # Explicit pickle support: slotted instances otherwise rely on the
    # version-sensitive default ``__reduce_ex__`` slot-state protocol.  The
    # parallel execution backends ship these snapshots across process
    # boundaries (shard results merged on join), so the wire format is
    # pinned to the one thing every counter dataclass defines — its fields.
    def __getstate__(self) -> dict[str, Any]:
        return self.as_dict()

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def as_dict(self) -> dict[str, Any]:
        """Return a plain-dict snapshot of the counters."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}  # type: ignore[attr-defined]

    def snapshot(self):
        """Return an independent copy of the current counters."""
        return type(self)(**self.as_dict())

    def diff(self, earlier):
        """Counters accumulated since ``earlier`` (``self - earlier``)."""
        return type(self)(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in self.__dataclass_fields__  # type: ignore[attr-defined]
            }
        )

    def merge(self, other) -> None:
        """Accumulate the counters of ``other`` into this instance."""
        for name in self.__dataclass_fields__:  # type: ignore[attr-defined]
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def reset(self) -> None:
        """Restore every counter to its dataclass default."""
        for name, spec in self.__dataclass_fields__.items():  # type: ignore[attr-defined]
            setattr(self, name, spec.default)

    @classmethod
    def aggregate(cls, stats: Iterable["CounterStatsMixin"]):
        """Sum a collection of stats (e.g. one per shard) into a new instance."""
        total = cls()
        for item in stats:
            total.merge(item)
        return total


@dataclass(slots=True)
class QueueStats(CounterStatsMixin):
    """Operation counters shared by all queue implementations.

    The counters are intentionally cheap (plain integer increments) and map
    one-to-one onto the abstract operations charged by the CPU cost model:

    * ``enqueues`` / ``dequeues`` — element-level operations.
    * ``bucket_lookups`` — direct bucket index computations (the O(1) part).
    * ``word_scans`` — FFS word reads (bitmap words examined).
    * ``divisions`` — algebraic critical-point computations (gradient queue).
    * ``linear_scans`` — buckets touched during linear fallback search.
    * ``heap_operations`` — sift-up/down steps in comparison baselines.
    * ``rotations`` — primary/secondary swaps in circular queues.
    """

    enqueues: int = 0
    dequeues: int = 0
    bucket_lookups: int = 0
    word_scans: int = 0
    divisions: int = 0
    linear_scans: int = 0
    heap_operations: int = 0
    rotations: int = 0
    overflow_enqueues: int = 0
    selection_errors: int = 0


@dataclass(frozen=True, slots=True)
class BucketSpec:
    """Describes the bucket layout of an integer priority queue.

    Attributes:
        num_buckets: number of buckets (``N`` in the paper).
        granularity: priority units covered by one bucket (``C/N``).
        base_priority: smallest priority covered by bucket 0.
    """

    num_buckets: int
    granularity: int = 1
    base_priority: int = 0

    def __post_init__(self) -> None:
        if self.num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if self.granularity <= 0:
            raise ValueError("granularity must be positive")

    @property
    def horizon(self) -> int:
        """Total priority range covered by the bucket array."""
        return self.num_buckets * self.granularity

    def bucket_for(self, priority: int) -> int:
        """Map an absolute priority to a bucket index (may be out of range)."""
        return (priority - self.base_priority) // self.granularity

    def priority_floor(self, bucket: int) -> int:
        """Smallest absolute priority represented by ``bucket``."""
        return self.base_priority + bucket * self.granularity

    def contains(self, priority: int) -> bool:
        """True when ``priority`` falls inside the covered range."""
        offset = priority - self.base_priority
        return 0 <= offset < self.horizon


class IntegerPriorityQueue(abc.ABC):
    """Abstract bucketed integer priority queue.

    Concrete implementations differ only in how they locate the minimum
    non-empty bucket; bucket storage (FIFO lists) and range checking are
    shared here.

    Every class in the hierarchy declares ``__slots__``: queue objects are
    touched per packet, and slot access skips the per-instance ``__dict__``
    lookup that otherwise dominates the interpreter's hot path.
    """

    __slots__ = ("spec", "stats", "_size")

    def __init__(self, spec: BucketSpec) -> None:
        self.spec = spec
        self.stats = QueueStats()
        self._size = 0

    # -- abstract surface -------------------------------------------------

    @abc.abstractmethod
    def enqueue(self, priority: int, item: Any) -> None:
        """Insert ``item`` with the given integer ``priority``."""

    @abc.abstractmethod
    def extract_min(self) -> tuple[int, Any]:
        """Remove and return ``(priority, item)`` for the smallest priority.

        Raises:
            EmptyQueueError: when the queue holds no elements.
        """

    @abc.abstractmethod
    def peek_min(self) -> tuple[int, Any]:
        """Return ``(priority, item)`` of the minimum element without removal."""

    # -- batch surface ----------------------------------------------------
    #
    # Batching is how the paper's BESS integration amortises per-packet
    # overhead: a timer fire or NIC pull moves a whole batch through the
    # queue in one call.  The defaults below fall back to N single-element
    # operations so every queue supports the API; concrete queues override
    # them with implementations that amortise bitmap/tree/heap index
    # maintenance across the batch (and charge their stats counters
    # per-batch instead of per-element).  Overrides must be observationally
    # equivalent to the defaults: same elements, same order.

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Insert every ``(priority, item)`` pair; returns the count inserted."""
        count = 0
        for priority, item in pairs:
            self.enqueue(priority, item)
            count += 1
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Remove and return up to ``n`` minimum elements in priority order.

        Returns fewer than ``n`` entries when the queue drains; never raises
        on an empty queue (an empty list is returned instead).
        """
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        while len(batch) < n and not self.empty:
            batch.append(self.extract_min())
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        """Drain every element whose priority is ``<= now`` (up to ``limit``).

        This is the operation a shaping qdisc performs when its timer fires:
        release every packet whose transmission timestamp has passed.  The
        check is against the head of the minimum bucket, so queues whose
        buckets span several priority units (granularity > 1) release at
        bucket resolution, exactly as the per-element peek/extract loop does.
        """
        released: list[tuple[int, Any]] = []
        while not self.empty and (limit is None or len(released) < limit):
            priority, _item = self.peek_min()
            if priority > now:
                break
            released.append(self.extract_min())
        return released

    # -- shared helpers ---------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def empty(self) -> bool:
        """True when no elements are enqueued."""
        return self._size == 0

    def extract_all(self) -> Iterator[tuple[int, Any]]:
        """Drain the queue in priority order."""
        while not self.empty:
            yield self.extract_min()

    def min_priority(self) -> Optional[int]:
        """Priority of the minimum element, or ``None`` when empty.

        This is the paper's ``SoonestDeadline()`` helper used by the kernel
        qdisc to program its wake-up timer (Section 4).
        """
        if self.empty:
            return None
        priority, _item = self.peek_min()
        return priority


def validate_priority(priority: int) -> int:
    """Validate that a rank is a (coercible) integer and return it as int.

    Packet ranks are integers by construction (deadlines, transmission times,
    flow sizes); floats are rejected rather than silently truncated so that
    policy bugs surface early.
    """
    if isinstance(priority, bool):
        raise TypeError("priority must be an integer, not bool")
    if isinstance(priority, int):
        return priority
    raise TypeError(f"priority must be an integer, got {type(priority).__name__}")


__all__ = [
    "BucketSpec",
    "CounterStatsMixin",
    "EmptyQueueError",
    "IntegerPriorityQueue",
    "PriorityOutOfRangeError",
    "QueueError",
    "QueueStats",
    "validate_priority",
]
