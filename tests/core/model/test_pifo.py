"""Unit tests for the PIFO block."""


from repro.core.model import PIFOBlock
from repro.core.queues import BinaryHeapQueue, BucketSpec


def make_pifo(buckets=128, **kwargs):
    return PIFOBlock(BucketSpec(num_buckets=buckets), **kwargs)


class TestPushPop:
    def test_pop_returns_minimum(self):
        pifo = make_pifo()
        pifo.push(10, "b")
        pifo.push(5, "a")
        pifo.push(20, "c")
        assert pifo.pop() == (5, "a")
        assert pifo.pop() == (10, "b")

    def test_peek(self):
        pifo = make_pifo()
        pifo.push(3, "x")
        assert pifo.peek() == (3, "x")
        assert len(pifo) == 1

    def test_len_and_empty(self):
        pifo = make_pifo()
        assert pifo.empty
        pifo.push(1, "x")
        assert len(pifo) == 1
        assert not pifo.empty

    def test_min_rank(self):
        pifo = make_pifo()
        assert pifo.min_rank() is None
        pifo.push(7, "x")
        pifo.push(2, "y")
        assert pifo.min_rank() == 2


class TestMembershipAndReordering:
    def test_contains_and_rank_of(self):
        pifo = make_pifo()
        element = object()
        pifo.push(9, element)
        assert element in pifo
        assert pifo.rank_of(element) == 9
        pifo.pop()
        assert element not in pifo
        assert pifo.rank_of(element) is None

    def test_remove(self):
        pifo = make_pifo()
        keep = object()
        drop = object()
        pifo.push(5, keep)
        pifo.push(3, drop)
        assert pifo.remove(drop)
        assert not pifo.remove(drop)
        assert pifo.pop() == (5, keep)

    def test_reinsert_moves_element(self):
        pifo = make_pifo()
        flow_a = object()
        flow_b = object()
        pifo.push(10, flow_a)
        pifo.push(20, flow_b)
        # flow_b's rank improves below flow_a's.
        pifo.reinsert(flow_b, 5)
        assert pifo.pop()[1] is flow_b
        assert pifo.pop()[1] is flow_a
        assert len(pifo) == 0

    def test_reinsert_of_absent_element_pushes(self):
        pifo = make_pifo()
        element = object()
        pifo.reinsert(element, 4)
        assert pifo.rank_of(element) == 4

    def test_remove_unsupported_backing_queue(self):
        pifo = PIFOBlock(
            BucketSpec(num_buckets=16), queue_factory=lambda spec: BinaryHeapQueue(spec)
        )
        element = object()
        pifo.push(3, element)
        # BinaryHeapQueue has no remove(); PIFOBlock reports failure.
        assert not pifo.remove(element)
