"""Figure 13 + the batching perf harness.

Two experiments live here:

1. **Figure 13** (the paper's): effect of per-flow batching and packet size
   on the BESS pipeline (hClock vs Eiffel, 5k flows).  Without batching,
   60 B packets cannot reach line rate; per-flow batching (10 KB bursts)
   recovers most of it; with 1500 B packets the schedulers are limited by
   their per-packet data-structure cost, where Eiffel holds line rate and
   the heap implementation does not.

2. **Batch-size sweep**: the library-level counterpart.  Every integer queue
   now exposes amortised ``enqueue_batch`` / ``extract_min_batch`` /
   ``extract_due`` paths; this harness sweeps batch sizes across queue types
   and records both modelled cycles/packet (the CPU cost model the kernel and
   BESS substrates charge) and wall-clock ops/sec.  Results are written to
   ``BENCH_batching.json`` at the repo root to seed the perf trajectory.

Run standalone (``python benchmarks/bench_fig13_batching.py``) to regenerate
the artifact, or through pytest for the assertions.
"""

import json
import time
from pathlib import Path

from conftest import report

from repro.analysis import format_series
from repro.bess import BessExperimentConfig, run_figure13
from repro.core.queues import (
    ApproximateGradientQueue,
    BucketSpec,
    CircularFFSQueue,
    GradientQueue,
    HierarchicalFFSQueue,
)
from repro.cpu import CostModel

NUM_FLOWS = 5000
CONFIG = BessExperimentConfig()

# -- batch-size sweep ---------------------------------------------------------

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batching.json"

#: Batch sizes swept; 1 is the per-packet (peek + extract) baseline path.
BATCH_SIZES = [1, 8, 32, 64]

#: Sweep workload: enough rank collisions that buckets hold several packets,
#: as under the paper's saturated 5k-flow traffic.
NUM_PACKETS = 4096
RANK_RANGE = 512

# The bucketed-heap baseline is deliberately absent: its heap index is
# maintained lazily (operations charge only when a bucket drains), so
# batching removes Python call overhead but not modelled operations.
SWEEP_QUEUES = {
    "circular_ffs": lambda: CircularFFSQueue(BucketSpec(num_buckets=RANK_RANGE)),
    "hierarchical_ffs": lambda: HierarchicalFFSQueue(BucketSpec(num_buckets=RANK_RANGE)),
    "gradient": lambda: GradientQueue(BucketSpec(num_buckets=RANK_RANGE)),
    "approx_gradient": lambda: ApproximateGradientQueue(
        BucketSpec(num_buckets=RANK_RANGE), alpha=64
    ),
}


def _workload(num_packets: int = NUM_PACKETS, rank_range: int = RANK_RANGE):
    """Deterministic pseudo-random ranks (no RNG dependency, reproducible)."""
    return [(index * 2654435761) % rank_range for index in range(num_packets)]


def _modelled_cycles(stats_before, stats_after) -> float:
    model = CostModel()
    model.charge_queue_stats(stats_after.diff(stats_before).as_dict())
    return model.total_cycles


#: Wall-clock rounds per sweep cell.  The modelled cycles are deterministic
#: (identical every round, asserted below); the wall clock is not — shared
#: CI machines throttle and frequency-ramp, so each cell reports the best of
#: several rounds, the standard way to estimate the code's actual speed
#: rather than the scheduler's mood.
WALL_CLOCK_ROUNDS = 5


def _measure_one(factory, batch_size: int, ranks, rounds: int = WALL_CLOCK_ROUNDS) -> dict:
    """Enqueue + drain one workload; returns modelled and wall-clock numbers.

    Runs ``rounds`` rounds on fresh queues: wall-clock numbers are the best
    round, modelled cycles are asserted identical across rounds.
    """
    pairs = [(rank, index) for index, rank in enumerate(ranks)]
    horizon = max(ranks) if ranks else 0
    best_enqueue = float("inf")
    best_drain = float("inf")
    enqueue_cycles = drain_cycles = 0.0
    for round_index in range(max(1, rounds)):
        queue = factory()

        # Enqueue phase.
        enqueue_before = queue.stats.snapshot()
        start = time.perf_counter()
        if batch_size == 1:
            for rank, item in pairs:
                queue.enqueue(rank, item)
        else:
            for offset in range(0, len(pairs), batch_size):
                queue.enqueue_batch(pairs[offset : offset + batch_size])
        enqueue_elapsed = time.perf_counter() - start
        round_enqueue_cycles = _modelled_cycles(enqueue_before, queue.stats)

        # Drain phase: batch == 1 is the per-packet consumer path (peek +
        # extract per packet, as a timer fire does without batching);
        # batch > 1 drains through the amortised ``extract_due`` path in
        # bounded bursts.
        drain_before = queue.stats.snapshot()
        drained = 0
        start = time.perf_counter()
        if batch_size == 1:
            while not queue.empty:
                rank, _item = queue.peek_min()
                if rank > horizon:  # pragma: no cover - horizon covers all ranks
                    break
                queue.extract_min()
                drained += 1
        else:
            while not queue.empty:
                drained += len(queue.extract_due(horizon, limit=batch_size))
        drain_elapsed = time.perf_counter() - start
        round_drain_cycles = _modelled_cycles(drain_before, queue.stats)

        assert drained == len(ranks)
        if round_index == 0:
            enqueue_cycles, drain_cycles = round_enqueue_cycles, round_drain_cycles
        else:
            # The cost model's answer must not depend on the round.
            assert round_enqueue_cycles == enqueue_cycles
            assert round_drain_cycles == drain_cycles
        best_enqueue = min(best_enqueue, enqueue_elapsed)
        best_drain = min(best_drain, drain_elapsed)

    packets = max(1, len(ranks))
    return {
        "batch_size": batch_size,
        "enqueue_cycles_per_packet": enqueue_cycles / packets,
        "drain_cycles_per_packet": drain_cycles / packets,
        "cycles_per_packet": (enqueue_cycles + drain_cycles) / packets,
        "enqueue_ops_per_sec": packets / max(best_enqueue, 1e-9),
        "drain_ops_per_sec": packets / max(best_drain, 1e-9),
    }


def run_batching_sweep(
    batch_sizes=None, queue_factories=None, num_packets: int = NUM_PACKETS
) -> dict:
    """Sweep batch sizes across queue types; returns the artifact payload."""
    sizes = batch_sizes or BATCH_SIZES
    factories = queue_factories or SWEEP_QUEUES
    ranks = _workload(num_packets)
    queues = {}
    for name, factory in factories.items():
        queues[name] = {
            str(size): _measure_one(factory, size, ranks) for size in sizes
        }
    return {
        "benchmark": "batching_sweep",
        "description": (
            "Amortised batch enqueue/drain vs the per-packet peek+extract "
            "path, per integer-queue type (modelled cycles/packet from the "
            "CPU cost model, wall-clock ops/sec from perf_counter)."
        ),
        "workload": {
            "num_packets": num_packets,
            "rank_range": RANK_RANGE,
            "distribution": "deterministic multiplicative-hash ranks",
        },
        "batch_sizes": sizes,
        "queues": queues,
    }


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_batching.json`` (the perf-trajectory artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_sweep(results: dict) -> str:
    lines = []
    header = f"{'queue':<18}" + "".join(f"b={size:<8}" for size in results["batch_sizes"])
    lines.append(header + "  (drain cycles/packet)")
    for name, by_size in results["queues"].items():
        row = f"{name:<18}"
        for size in results["batch_sizes"]:
            row += f"{by_size[str(size)]['drain_cycles_per_packet']:<10.1f}"
        lines.append(row)
    return "\n".join(lines)


# -- pytest entry points ------------------------------------------------------


def run_experiment():
    return run_figure13(num_flows=NUM_FLOWS, config=CONFIG)


def test_fig13_batching_and_packet_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = format_series(
        f"Max rate vs packet size, {NUM_FLOWS} flows (batching on/off)",
        list(results.values()),
        x_label="packet bytes",
        y_label="Mbps",
    )
    report("Figure 13 — batching and packet size", text)

    def rate(series_name: str, size: int) -> float:
        series = results[series_name]
        return series.y[series.x.index(size)]

    benchmark.extra_info["rates_mbps"] = {
        name: dict(zip(series.x, series.y)) for name, series in results.items()
    }
    # Small packets without batching fall far short of line rate.
    assert rate("eiffel_no_batching", 60) < 0.8 * CONFIG.line_rate_bps / 1e6
    # Batching recovers small-packet throughput for Eiffel.
    assert rate("eiffel_batching", 60) > rate("eiffel_no_batching", 60)
    # At MTU size without batching Eiffel outperforms the heap baseline.
    assert rate("eiffel_no_batching", 1500) > rate("hclock_no_batching", 1500)


def test_batch_sweep_emits_artifact_and_amortises(benchmark, tmp_path):
    results = benchmark.pedantic(run_batching_sweep, rounds=1, iterations=1)
    # The test writes to a scratch path: the committed BENCH_batching.json
    # contains machine-dependent wall-clock numbers, so it is regenerated
    # deliberately (``python benchmarks/bench_fig13_batching.py``), not as a
    # side effect of every test run.
    path = write_artifact(results, tmp_path / "BENCH_batching.json")
    report("Batching sweep — modelled cycles/packet", _format_sweep(results))
    benchmark.extra_info["artifact"] = str(path)

    assert len(results["queues"]) >= 3
    assert set(results["batch_sizes"]) >= {1, 8, 32, 64}
    for name, by_size in results["queues"].items():
        baseline = by_size["1"]["drain_cycles_per_packet"]
        for size in results["batch_sizes"]:
            if size >= 8:
                batched = by_size[str(size)]["drain_cycles_per_packet"]
                assert batched < baseline, (
                    f"{name}: batch={size} drain ({batched:.1f}) not below "
                    f"per-packet path ({baseline:.1f})"
                )


if __name__ == "__main__":
    sweep = run_batching_sweep()
    artifact = write_artifact(sweep)
    print(_format_sweep(sweep))
    print(f"\nwrote {artifact}")
