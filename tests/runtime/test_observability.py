"""The deterministic observability plane: histograms, tracer, timeline.

Three layers of coverage.  Property tests pin :class:`LogHistogram` against
a sorted-list reference — ``quantile()`` must stay inside the documented
bucket error bound for *any* sample set, and ``merge()`` must commute and
associate so per-shard histograms can fold in any order.  Unit tests pin the
:class:`FlightRecorder` ring discipline and Chrome trace-event schema and
the :class:`MetricsTimeline` exporters.  Integration tests arm the full
plane on a real runtime and assert the two contracts that make it safe to
ship: arming changes **no modelled cycle account** (the instruments observe
the cost model, they never participate in it), and the same seed replays
the same histograms, trace, and timeline byte for byte.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model.packet import Packet
from repro.runtime import (
    FaultEvent,
    FaultPlan,
    FlightRecorder,
    LogHistogram,
    MetricsTimeline,
    ShardedRuntime,
)
from repro.runtime.observability import MAX_TRACKABLE_NS, _ceil_rank

#: Latency-like magnitudes: sub-microsecond up to ~18 minutes in ns.
sample_values = st.integers(min_value=0, max_value=10**12)
sample_lists = st.lists(sample_values, min_size=1, max_size=300)


def _filled(values, precision=7):
    histogram = LogHistogram(precision)
    for value in values:
        histogram.record(value)
    return histogram


class TestLogHistogramProperties:
    @given(values=sample_lists, q=st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_documented_bound_of_sorted_reference(self, values, q):
        histogram = _filled(values)
        ordered = sorted(values)
        exact = ordered[min(len(values), max(1, _ceil_rank(q, len(values)))) - 1]
        estimate = histogram.quantile(q)
        assert exact <= estimate <= exact + (exact >> histogram.precision)

    @given(values=sample_lists)
    def test_count_sum_min_max_mean_are_exact(self, values):
        histogram = _filled(values)
        assert histogram.count == len(values)
        assert histogram.sum == sum(values)
        assert histogram.min_value == min(values)
        assert histogram.max_value == max(values)
        assert histogram.mean == pytest.approx(sum(values) / len(values))

    @given(a=sample_lists, b=sample_lists)
    def test_merge_commutes(self, a, b):
        left = _filled(a).merge(_filled(b))
        right = _filled(b).merge(_filled(a))
        assert left == right

    @given(a=sample_lists, b=sample_lists, c=sample_lists)
    def test_merge_associates(self, a, b, c):
        ha, hb, hc = _filled(a), _filled(b), _filled(c)
        left = _filled(a).merge(_filled(b)).merge(hc.snapshot())
        right = ha.snapshot().merge(_filled(b).merge(_filled(c)))
        assert left == right

    @given(a=sample_lists, b=sample_lists)
    def test_merge_equals_bulk_record(self, a, b):
        assert _filled(a).merge(_filled(b)) == _filled(a + b)

    @given(values=sample_lists)
    def test_pickle_round_trip_preserves_equality(self, values):
        original = _filled(values)
        assert pickle.loads(pickle.dumps(original)) == original

    @settings(max_examples=25)
    @given(values=st.lists(sample_values, min_size=1, max_size=50))
    def test_aggregate_matches_pairwise_merge(self, values):
        shards = [_filled(values[i::3]) for i in range(3)]
        total = LogHistogram.aggregate(h.snapshot() for h in shards)
        expected = _filled(values[0::3] + values[1::3] + values[2::3])
        assert total == expected


class TestLogHistogramEdges:
    def test_negative_values_clamp_to_zero(self):
        histogram = _filled([-5])
        assert histogram.min_value == 0
        assert histogram.quantile(1.0) == 0

    def test_huge_values_clamp_to_max_trackable(self):
        histogram = _filled([MAX_TRACKABLE_NS * 10])
        assert histogram.max_value == MAX_TRACKABLE_NS
        assert histogram.quantile(1.0) == MAX_TRACKABLE_NS

    def test_empty_histogram_reads_as_zero(self):
        histogram = LogHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.99) == 0
        assert histogram.min_value is None

    def test_unit_buckets_are_exact(self):
        # Values below 2**precision land in width-1 buckets: zero error.
        histogram = _filled(range(128))
        for q, exact in ((0.5, 63), (1.0, 127)):
            assert histogram.quantile(q) == exact

    def test_reset_zeroes_everything(self):
        histogram = _filled([1, 10**6])
        histogram.reset()
        assert histogram == LogHistogram()

    def test_merge_rejects_precision_mismatch(self):
        with pytest.raises(ValueError, match="precision"):
            LogHistogram(precision=7).merge(LogHistogram(precision=5))

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            LogHistogram(precision=0)

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError, match="q must be"):
            LogHistogram().quantile(1.5)

    def test_as_dict_is_json_friendly(self):
        row = _filled([100, 200, 300]).as_dict()
        assert row["count"] == 3
        assert row["p50_ns"] >= 200
        json.dumps(row)  # must not raise

    def test_nonzero_buckets_cover_every_sample(self):
        values = [3, 500, 123_456]
        total = sum(count for _lo, _hi, count in _filled(values).nonzero())
        assert total == len(values)


class TestFlightRecorder:
    def test_ring_keeps_newest_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.emit(i * 100, "shard-0", f"event-{i}")
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert recorder.dropped == 6
        assert [name for _ts, _track, name, _args in recorder.events()] == [
            "event-6", "event-7", "event-8", "event-9",
        ]

    def test_counts_by_track(self):
        recorder = FlightRecorder()
        recorder.emit(0, "shard-0", "a")
        recorder.emit(1, "shard-0", "b")
        recorder.emit(2, "rx-0", "c")
        assert recorder.counts_by_track() == {"shard-0": 2, "rx-0": 1}

    def test_chrome_trace_schema(self):
        recorder = FlightRecorder()
        recorder.emit(1500, "shard-0", "drain_batch", {"released": 3})
        recorder.emit(2000, "supervisor", "fault_recover")
        trace = recorder.to_chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert [m["args"]["name"] for m in metadata] == ["shard-0", "supervisor"]
        assert all(e["name"] == "thread_name" for e in metadata)
        assert [e["ts"] for e in instants] == [1.5, 2.0]  # ns -> us
        assert all(e["s"] == "t" and e["pid"] == 0 for e in instants)
        assert instants[0]["args"] == {"released": 3}
        # Tracks map to distinct tids; metadata and instants agree on them.
        assert instants[0]["tid"] != instants[1]["tid"]
        json.dumps(trace)  # Perfetto needs real JSON

    def test_clear_resets_drop_accounting(self):
        recorder = FlightRecorder(capacity=1)
        recorder.emit(0, "shard-0", "a")
        recorder.emit(1, "shard-0", "b")
        recorder.clear()
        assert len(recorder) == 0 and recorder.recorded == 0 and recorder.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


class TestMetricsTimeline:
    def test_samples_accumulate_in_order(self):
        timeline = MetricsTimeline(interval_ns=1000)
        timeline.sample(1000, {"pending": 5})
        timeline.sample(2000, {"pending": 2})
        assert len(timeline) == 2
        series = timeline.as_dict()
        assert series["interval_ns"] == 1000
        assert [s["ts_ns"] for s in series["samples"]] == [1000, 2000]

    def test_prometheus_renders_scalars_and_labelled_maps(self):
        timeline = MetricsTimeline()
        timeline.sample(100, {"pending": 7, "backlog": {"0": 3, "1": 0}})
        text = timeline.to_prometheus()
        assert "# TYPE repro_backlog gauge" in text
        assert 'repro_backlog{id="0"} 3' in text
        assert "repro_pending 7" in text
        assert text.endswith("\n")

    def test_prometheus_scrapes_only_the_last_sample(self):
        timeline = MetricsTimeline()
        timeline.sample(100, {"pending": 7})
        timeline.sample(200, {"pending": 1})
        assert "repro_pending 1" in timeline.to_prometheus()
        assert "repro_pending 7" not in timeline.to_prometheus()

    def test_empty_timeline_renders_empty(self):
        assert MetricsTimeline().to_prometheus() == ""

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval_ns"):
            MetricsTimeline(interval_ns=0)


#: Slow pacing so packets genuinely wait in queues (non-trivial latencies).
RATE_BPS = 1e9
PACKET_BYTES = 1500


def _run(
    *,
    latency_histograms=False,
    tracer=None,
    metrics_timeline=None,
    fault_plan=None,
    ingress_cores=0,
    packets=240,
    flows=12,
    shards=4,
):
    runtime = ShardedRuntime(
        shards,
        default_rate_bps=RATE_BPS,
        steal_enabled=True,
        steal_min_backlog=4,
        ingress_cores=ingress_cores,
        latency_histograms=latency_histograms,
        tracer=tracer,
        metrics_timeline=metrics_timeline,
        fault_plan=fault_plan,
    )
    # Zipf-ish skew: low flow ids dominate, so stealing actually fires.
    for i in range(packets):
        flow_id = (i * i) % flows
        runtime.submit(Packet(flow_id=flow_id, size_bytes=PACKET_BYTES))
    runtime.run()
    return runtime


class TestRuntimeIntegration:
    def test_arming_the_full_plane_changes_no_modelled_account(self):
        disarmed = _run(ingress_cores=2)
        armed = _run(
            ingress_cores=2,
            latency_histograms=True,
            tracer=FlightRecorder(),
            metrics_timeline=MetricsTimeline(interval_ns=50_000),
        )
        bare, instrumented = disarmed.telemetry(), armed.telemetry()
        assert instrumented.total_cycles == bare.total_cycles
        assert instrumented.max_shard_cycles == bare.max_shard_cycles
        assert instrumented.max_ingress_cycles == bare.max_ingress_cycles
        assert instrumented.transmitted == bare.transmitted
        # Packet ids are process-global, so compare (time, flow) schedules.
        armed_schedule = [(ts, p.flow_id) for ts, p in armed.transmit_log]
        bare_schedule = [(ts, p.flow_id) for ts, p in disarmed.transmit_log]
        assert armed_schedule == bare_schedule

    def test_armed_seams_populate_histograms(self):
        runtime = _run(latency_histograms=True, ingress_cores=2)
        latency = runtime.telemetry().latency
        assert set(latency) == {"rx_sojourn", "mailbox_wait", "queue_sojourn", "e2e"}
        transmitted = runtime.telemetry().transmitted
        assert latency["e2e"].count == transmitted
        assert latency["queue_sojourn"].count == transmitted
        assert latency["mailbox_wait"].count >= transmitted
        # Paced drain means end-to-end dominates any single component.
        assert latency["e2e"].max_value >= latency["queue_sojourn"].max_value

    def test_disarmed_run_reports_no_component_seams(self):
        latency = _run(ingress_cores=0).telemetry().latency
        assert latency == {}

    def test_rx_sojourn_is_always_on_with_ingress_cores(self):
        telemetry = _run(ingress_cores=2).telemetry()
        assert set(telemetry.latency) == {"rx_sojourn"}
        per_lane = sum(lane.sojourn.count for lane in telemetry.ingress)
        assert telemetry.latency["rx_sojourn"].count == per_lane > 0

    def test_tracer_covers_every_expected_track_and_seam(self):
        recorder = FlightRecorder()
        runtime = _run(tracer=recorder, ingress_cores=2)
        names = {name for _ts, _track, name, _args in recorder.events()}
        assert {"ingress_pull", "mailbox_handoff", "drain_batch"} <= names
        assert {"lease_grant", "lease_return"} <= names  # stealing fired
        tracks = recorder.counts_by_track()
        assert {"rx-0", "rx-1"} <= set(tracks)
        assert any(track.startswith("shard-") for track in tracks)
        assert runtime.telemetry().steals_succeeded > 0

    def test_fault_events_land_in_trace_with_recovery_timestamps(self):
        recorder = FlightRecorder()
        plan = FaultPlan([FaultEvent("shard_crash", target=0, at=3)])
        runtime = _run(tracer=recorder, fault_plan=plan, latency_histograms=True)
        injects = [e for e in recorder.events() if e[2] == "fault_inject"]
        recovers = [e for e in recorder.events() if e[2] == "fault_recover"]
        assert [e[3]["kind"] for e in injects] == ["shard_crash"]
        assert len(recovers) == 1
        log = runtime.telemetry().faults["recovery_log"]
        assert len(log) == 1
        assert recovers[0][3]["failed_at_ns"] == log[0]["failed_at_ns"]
        assert recovers[0][3]["packets_lost"] == log[0]["packets_lost"]
        # Crashed-incarnation histograms fold into the merged telemetry.
        latency = runtime.telemetry().latency
        assert latency["e2e"].count == runtime.telemetry().transmitted

    def test_same_seed_replays_identical_observability(self):
        def observe():
            recorder = FlightRecorder()
            timeline = MetricsTimeline(interval_ns=50_000)
            runtime = _run(
                latency_histograms=True,
                tracer=recorder,
                metrics_timeline=timeline,
                ingress_cores=1,
            )
            return runtime.telemetry().latency, recorder, timeline

        latency_a, recorder_a, timeline_a = observe()
        latency_b, recorder_b, timeline_b = observe()
        assert latency_a == latency_b
        assert recorder_a.events() == recorder_b.events()
        assert recorder_a.to_chrome_trace() == recorder_b.to_chrome_trace()
        assert timeline_a.as_dict() == timeline_b.as_dict()

    def test_timeline_samples_while_work_is_in_flight(self):
        timeline = MetricsTimeline(interval_ns=50_000)
        runtime = _run(metrics_timeline=timeline)
        assert len(timeline) > 0
        first = timeline.samples[0]
        gauges = first["gauges"]
        assert set(gauges) >= {
            "pending_packets", "live_flows", "shard_backlog", "shard_cycles",
        }
        assert set(gauges["shard_backlog"]) == {"0", "1", "2", "3"}
        assert timeline.to_prometheus().startswith("# TYPE repro_")
        # The sampler disarms once the run drains: no trailing idle samples.
        drained_at = runtime.simulator.now_ns
        assert timeline.samples[-1]["ts_ns"] <= drained_at

    def test_process_backend_merges_per_shard_histograms(self):
        def telemetry_for(backend):
            runtime = ShardedRuntime(
                2,
                default_rate_bps=RATE_BPS,
                latency_histograms=True,
                backend=backend,
            )
            for i in range(80):
                runtime.submit(Packet(flow_id=i % 8, size_bytes=PACKET_BYTES))
            runtime.run()
            return runtime.telemetry()

        simulated = telemetry_for("simulated")
        process = telemetry_for("process")
        assert set(process.latency) == {"mailbox_wait", "queue_sojourn", "e2e"}
        assert process.latency == simulated.latency
