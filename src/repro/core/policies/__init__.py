"""Ready-made scheduling policies built on Eiffel's model primitives."""

from .base import PacketScheduler
from .fair_queueing import (
    DeficitRoundRobinScheduler,
    LongestQueueFirstScheduler,
    StartTimeFairQueueingScheduler,
)
from .hclock import EiffelHClockScheduler, HClockClass, HeapHClockScheduler
from .pacing import TimestampPacingScheduler
from .pfabric import (
    DEFAULT_MAX_REMAINING,
    EiffelPFabricScheduler,
    HeapPFabricScheduler,
)
from .simple import (
    EarliestDeadlineFirstScheduler,
    FIFOScheduler,
    LeastSlackTimeFirstScheduler,
    ShortestRemainingTimeFirstScheduler,
    StrictPriorityScheduler,
)

__all__ = [
    "DEFAULT_MAX_REMAINING",
    "DeficitRoundRobinScheduler",
    "EarliestDeadlineFirstScheduler",
    "EiffelHClockScheduler",
    "EiffelPFabricScheduler",
    "FIFOScheduler",
    "HClockClass",
    "HeapHClockScheduler",
    "HeapPFabricScheduler",
    "LeastSlackTimeFirstScheduler",
    "LongestQueueFirstScheduler",
    "PacketScheduler",
    "ShortestRemainingTimeFirstScheduler",
    "StartTimeFairQueueingScheduler",
    "StrictPriorityScheduler",
    "TimestampPacingScheduler",
]
