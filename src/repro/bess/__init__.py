"""Userspace (BESS-like) busy-polling substrate for Use Cases 2 and 3."""

from .experiment import (
    BessExperimentConfig,
    crossover_flows,
    hclock_class_config,
    measure_max_rate,
    run_figure12,
    run_figure13,
    run_figure15,
)
from .module import BufferModule, Module, Pipeline, PipelineReport, Sink, Source
from .scheduler_modules import (
    BessTcModule,
    HClockEiffelModule,
    HClockHeapModule,
    PFabricEiffelModule,
    PFabricHeapModule,
    SchedulerModule,
)

__all__ = [
    "BessExperimentConfig",
    "BessTcModule",
    "BufferModule",
    "HClockEiffelModule",
    "HClockHeapModule",
    "Module",
    "PFabricEiffelModule",
    "PFabricHeapModule",
    "Pipeline",
    "PipelineReport",
    "SchedulerModule",
    "Sink",
    "Source",
    "crossover_flows",
    "hclock_class_config",
    "measure_max_rate",
    "run_figure12",
    "run_figure13",
    "run_figure15",
]
