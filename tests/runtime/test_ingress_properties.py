"""Property-based tests for the ingress pipeline.

The subsystem-level invariant (the ingress extension of the runtime's lease
/ FIFO contract): **with backpressure enabled and no admission policy armed,
every packet offered to the runtime is delivered exactly once, and per-flow
FIFO holds end-to-end** — whatever the combination of ingress-core count,
shard count, ring/mailbox bounds, pacing, work stealing, and rebalancing the
schedule produces.  The RX leg composes because one flow always traverses
one ring (the ingress-lane hash) and a stalled pull holds the *whole* ring
back, so ring order is mailbox order is shard order.
"""

from hypothesis import given, settings, strategies as st

from repro.core.model.packet import Packet
from repro.runtime import ShardedRuntime

QUANTUM_NS = 10_000


@st.composite
def workloads(draw):
    """A random submission schedule: bursts of flow ids over time."""
    num_flows = draw(st.integers(min_value=1, max_value=12))
    num_bursts = draw(st.integers(min_value=1, max_value=8))
    return [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_flows - 1),
                min_size=1,
                max_size=30,
            )
        )
        for _ in range(num_bursts)
    ]


@given(
    bursts=workloads(),
    ingress_cores=st.integers(min_value=1, max_value=3),
    num_shards=st.integers(min_value=1, max_value=4),
    rate_kind=st.sampled_from(["unpaced", "fast", "slow"]),
    mailbox_capacity=st.sampled_from([None, 4, 16]),
    steal=st.booleans(),
    rebalance=st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_ingress_conservation_and_fifo(
    bursts, ingress_cores, num_shards, rate_kind, mailbox_capacity, steal, rebalance
):
    rate = {"unpaced": None, "fast": 10e9, "slow": 50e6}[rate_kind]
    runtime = ShardedRuntime(
        num_shards,
        default_rate_bps=rate,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=16,
        ingress_cores=ingress_cores,
        mailbox_capacity=mailbox_capacity,
        rx_ring_capacity=8,  # tiny nominal ring: growth is the common path
        rx_burst=8,
        shard_backlog_limit=8 if mailbox_capacity is not None else None,
        rebalance_interval_ns=3 * QUANTUM_NS if rebalance else None,
        steal_enabled=steal,
        steal_batch=8,
        steal_min_backlog=1,
    )
    submitted = {}
    total = 0
    for burst in bursts:
        packets = [Packet(flow_id=flow_id, size_bytes=1500) for flow_id in burst]
        for packet in packets:
            submitted.setdefault(packet.flow_id, []).append(packet.packet_id)
        accepted = runtime.submit_batch(packets)
        # Pure backpressure: the RX ring grows, nothing is ever refused.
        assert accepted == len(packets)
        total += accepted
        # Partial progress between bursts so stalls, lease handoffs and lazy
        # migrations land at every phase of the pipeline, not only the end.
        runtime.run(until_ns=runtime.simulator.now_ns + 2 * QUANTUM_NS)
    runtime.run()

    # Conservation: exactly once, no loss anywhere in the pipeline.
    assert runtime.transmitted == total
    assert runtime.pending == 0
    assert runtime.ingress_drops == 0
    assert runtime.telemetry().admission_drops == 0
    observed = {}
    for _now, packet in runtime.transmit_log:
        observed.setdefault(packet.flow_id, []).append(packet.packet_id)
    # Per-flow FIFO and conservation in one equality: same flows, same
    # packets, same order.
    assert observed == submitted
    # No flow is stranded mid-lease and every ring drained.
    assert runtime.sharder.loaned_flows() == {}
    assert all(core.ring.empty for core in runtime.ingress_cores)
    assert all(not core.stalled for core in runtime.ingress_cores)
