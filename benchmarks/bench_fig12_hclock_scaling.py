"""Figure 12: max aggregate rate vs number of flows for hClock implementations.

Paper setup: single core, 1500 B packets, 10 Gbps NIC; top panel at line
rate, bottom panel with a 5 Gbps aggregate limit; series are hClock (min
heaps), Eiffel's hClock, and BESS tc.  The paper's headline: Eiffel sustains
line rate at up to ~40x the number of flows of the heap implementation.
"""

from conftest import report

from repro.analysis import format_series
from repro.bess import BessExperimentConfig, crossover_flows, run_figure12

FLOW_COUNTS = [10, 100, 1000, 5000, 10000]
CONFIG = BessExperimentConfig()


def run_top_panel():
    return run_figure12(FLOW_COUNTS, config=CONFIG)


def run_bottom_panel():
    return run_figure12(FLOW_COUNTS, rate_limit_bps=5e9, config=CONFIG)


def test_fig12_line_rate_panel(benchmark):
    results = benchmark.pedantic(run_top_panel, rounds=1, iterations=1)
    text = format_series(
        "Max supported aggregate rate at 10 Gbps line rate",
        list(results.values()),
        x_label="flows",
        y_label="Mbps",
    )
    eiffel_cross = crossover_flows(results["eiffel"], CONFIG.line_rate_bps)
    hclock_cross = crossover_flows(results["hclock"], CONFIG.line_rate_bps)
    ratio = eiffel_cross / max(1, hclock_cross or 1)
    text += (
        f"\n\nflows sustaining line rate: eiffel={eiffel_cross}, hclock={hclock_cross}"
        f"\nEiffel supports ~{ratio:.0f}x more flows at line rate (paper: up to 40x)"
    )
    report("Figure 12 (top) — hClock scaling at line rate", text)
    benchmark.extra_info["line_rate_flows"] = {
        "eiffel": eiffel_cross,
        "hclock": hclock_cross,
    }
    assert results["eiffel"].y[-1] > results["hclock"].y[-1]
    assert results["eiffel"].y[-1] > results["bess_tc"].y[-1]
    assert ratio >= 5


def test_fig12_rate_limited_panel(benchmark):
    results = benchmark.pedantic(run_bottom_panel, rounds=1, iterations=1)
    text = format_series(
        "Max supported aggregate rate with a 5 Gbps limit",
        list(results.values()),
        x_label="flows",
        y_label="Mbps",
    )
    report("Figure 12 (bottom) — hClock scaling at a 5 Gbps limit", text)
    # The limit caps every system at 5 Gbps; the ordering at large flow
    # counts is unchanged.
    assert max(results["eiffel"].y) <= 5000.01
    assert results["eiffel"].y[-1] >= results["hclock"].y[-1]
