"""Policy compiler: turn a :class:`~repro.core.model.policy.PolicySpec` into a
runnable :class:`~repro.core.model.scheduler.EiffelScheduler`.

This is the Python counterpart of the PIFO toolchain step the paper reuses
("the existing implementation represents the policy as a graph using the DOT
description language and translates the graph into C++ code", Section 4):
each internal node's discipline becomes a :class:`NodeRankPolicy`, each rate
limit becomes a shaping transaction feeding the shared decoupled shaper, and
the flow-to-leaf mapping becomes the packet annotator.
"""

from __future__ import annotations

from typing import Dict, Optional

from .packet import Packet
from .pifo import QueueFactory, default_queue_factory
from .policy import Discipline, PolicySpec
from .scheduler import EiffelScheduler
from .shaper import DecoupledShaper
from .transactions import RateLimit
from .tree import (
    FIFORankPolicy,
    NodeConfig,
    NodeRankPolicy,
    SchedulingTree,
    StrictPriorityRankPolicy,
    WFQRankPolicy,
)


def _rank_policy_for(spec: PolicySpec, node_name: str) -> Optional[NodeRankPolicy]:
    """Build the rank policy a node uses to order its children."""
    node_spec = spec.node(node_name)
    children = spec.children_of(node_name)
    if not children:
        # Leaves order their own packets FIFO.
        return FIFORankPolicy()
    if node_spec.discipline is Discipline.FIFO:
        return FIFORankPolicy()
    if node_spec.discipline is Discipline.STRICT:
        priorities = {child.name: child.priority for child in children}
        return StrictPriorityRankPolicy(priorities)
    if node_spec.discipline is Discipline.WFQ:
        weights = {child.name: child.weight for child in children}
        return WFQRankPolicy(weights)
    raise ValueError(f"unsupported discipline {node_spec.discipline!r}")


def compile_policy(
    spec: PolicySpec,
    queue_factory: QueueFactory = default_queue_factory,
) -> EiffelScheduler:
    """Compile ``spec`` into a configured scheduler.

    Args:
        spec: validated policy description (``validate`` is called here).
        queue_factory: integer-queue factory used for every PIFO in the tree
            (cFFS by default; benchmarks swap in other families).
    """
    spec.validate()
    configs = []
    for node_spec in spec.nodes:
        configs.append(
            NodeConfig(
                name=node_spec.name,
                parent=node_spec.parent,
                rank_policy=_rank_policy_for(spec, node_spec.name),
                rate_limit=(
                    RateLimit(node_spec.rate_limit_bps)
                    if node_spec.rate_limit_bps
                    else None
                ),
                pifo_buckets=node_spec.pifo_buckets,
            )
        )
    tree = SchedulingTree(configs, queue_factory=queue_factory)

    def annotator(packet: Packet) -> str:
        leaf = packet.metadata.get("leaf")
        if leaf is not None:
            return leaf
        return spec.leaf_for_flow(packet.flow_id)

    needs_shaper = spec.pacing_rate_bps is not None or any(
        node.rate_limit_bps for node in spec.nodes
    )
    shaper = (
        DecoupledShaper(
            horizon_ns=spec.shaper_horizon_ns,
            granularity_ns=spec.shaper_granularity_ns,
        )
        if needs_shaper
        else None
    )
    return EiffelScheduler(
        tree,
        annotator=annotator,
        shaper=shaper,
        pacing_rate_bps=spec.pacing_rate_bps,
    )


def describe_policy(spec: PolicySpec) -> str:
    """Render a short human-readable summary of a policy hierarchy."""
    spec.validate()
    lines = [f"policy {spec.name}"]
    by_parent: Dict[Optional[str], list] = {}
    for node in spec.nodes:
        by_parent.setdefault(node.parent, []).append(node)

    def walk(name: Optional[str], depth: int) -> None:
        for node in by_parent.get(name, []):
            limit = (
                f", limit={node.rate_limit_bps:g}bps" if node.rate_limit_bps else ""
            )
            lines.append(
                "  " * depth
                + f"- {node.name} [{node.discipline.value}, weight={node.weight:g}{limit}]"
            )
            walk(node.name, depth + 1)

    walk(None, 0)
    if spec.pacing_rate_bps:
        lines.append(f"aggregate pacing: {spec.pacing_rate_bps:g} bps")
    return "\n".join(lines)


__all__ = ["compile_policy", "describe_policy"]
