"""Unit tests of the array-backed flow-state engine (repro.runtime.flowstate)."""

import pickle
import random

import pytest

from repro.core.model.transactions import RateLimit, ShapingTransaction
from repro.runtime import FlowSharder, FlowTable, PacingTable, ShardedRuntime
from repro.core.model.packet import Packet

RATE_BPS = 1e9


class TestFlowTable:
    def test_ensure_lookup_remove_roundtrip(self):
        table = FlowTable()
        slot = table.ensure(42)
        assert table.created
        assert table.lookup(42) == slot
        assert 42 in table
        assert len(table) == 1
        assert table.ensure(42) == slot
        assert not table.created
        assert table.remove(42)
        assert not table.remove(42)
        assert table.lookup(42) == -1
        assert len(table) == 0

    def test_negative_flow_id_rejected(self):
        table = FlowTable()
        with pytest.raises(ValueError):
            table.ensure(-1)

    def test_duplicate_column_rejected(self):
        table = FlowTable()
        table.add_column("x", "i", 0)
        with pytest.raises(ValueError):
            table.add_column("x", "q", 0)

    def test_slots_recycle_and_columns_reset(self):
        table = FlowTable()
        col = table.add_column("v", "q", -7)
        slot = table.ensure(1)
        col[slot] = 999
        table.remove(1)
        reused = table.ensure(2)
        assert reused == slot  # the free list served the dead flow's slot
        assert col[reused] == -7  # ...with the column back at its default
        assert table.stats.recycles == 1

    def test_column_added_after_rows_reads_default(self):
        table = FlowTable()
        for flow in range(10):
            table.ensure(flow)
        late = table.add_column("late", "d", 2.5)
        assert all(late[table.lookup(flow)] == 2.5 for flow in range(10))

    def test_cached_column_reference_survives_growth(self):
        table = FlowTable()
        col = table.add_column("v", "q", 0)
        first = table.ensure(0)
        col[first] = 123
        for flow in range(1, 5000):  # forces repeated array growth + rehash
            table.ensure(flow)
        assert col is table.column("v")
        assert col[table.lookup(0)] == 123
        assert table.stats.rehashes > 0

    def test_matches_dict_reference_under_random_churn(self):
        rng = random.Random(1234)
        table = FlowTable()
        col = table.add_column("v", "q", 0)
        reference = {}
        peak = 0
        for _step in range(4000):
            flow = rng.randrange(200)
            action = rng.random()
            if action < 0.5:
                slot = table.ensure(flow)
                if table.created:
                    assert flow not in reference
                    reference[flow] = rng.randrange(1 << 40)
                    col[slot] = reference[flow]
                else:
                    assert flow in reference
            elif action < 0.8:
                assert table.remove(flow) == (reference.pop(flow, None) is not None)
            else:
                slot = table.lookup(flow)
                if flow in reference:
                    assert slot >= 0 and col[slot] == reference[flow]
                else:
                    assert slot == -1
            peak = max(peak, len(reference))
            assert len(table) == len(reference)
        assert sorted(flow for flow, _slot in table.items()) == sorted(reference)
        # Dense slots track peak-concurrent flows, not flows ever seen.
        assert table.slot_limit <= max(32, 2 * peak)

    def test_items_and_live_slots_consistent(self):
        table = FlowTable()
        for flow in range(20):
            table.ensure(flow)
        for flow in range(0, 20, 2):
            table.remove(flow)
        live = dict(table.items())
        assert sorted(live) == list(range(1, 20, 2))
        assert sorted(live.values()) == sorted(table.live_slots())

    def test_pickle_roundtrip_preserves_shared_columns(self):
        table = FlowTable()
        col = table.add_column("v", "q", 0)
        for flow in range(100):
            col[table.ensure(flow)] = flow * 11
        clone = pickle.loads(pickle.dumps(table))
        assert len(clone) == 100
        clone_col = clone.column("v")
        assert all(clone_col[clone.lookup(flow)] == flow * 11 for flow in range(100))
        clone.remove(7)
        assert 7 in table  # independent copies

    def test_memory_bytes_tracks_columns(self):
        table = FlowTable()
        baseline = table.memory_bytes()
        table.add_column("a", "q", 0)
        table.add_column("b", "d", 0.0)
        for flow in range(10_000):
            table.ensure(flow)
        per_flow = table.memory_bytes() / 10_000
        assert table.memory_bytes() > baseline
        # 8B key + 8+8B columns + index cells + free list overheads — the
        # whole point of the engine is staying O(tens of bytes) per flow.
        assert per_flow < 64


class TestPacingTable:
    def _random_equivalence(self, rate, burst, seed):
        """Column stamps must be bit-identical to ShapingTransaction's."""
        rng = random.Random(seed)
        reference = ShapingTransaction("ref", RateLimit(rate, burst))
        pacing = PacingTable(shard_id=0)
        pacing.install(5, ShapingTransaction("ref", RateLimit(rate, burst)))
        slot = pacing.lookup(5)
        now = 0
        for _ in range(300):
            now += rng.randrange(0, 50_000)
            size = rng.choice([64, 512, 1500, 9000])
            expected = reference.stamp(Packet(flow_id=5, size_bytes=size), now)
            assert pacing.stamp(slot, size, now) == expected
            assert pacing.next_free_at(slot) == reference.next_free_ns

    def test_stamp_equivalence_no_burst(self):
        self._random_equivalence(RATE_BPS, 0, seed=1)

    def test_stamp_equivalence_with_burst(self):
        self._random_equivalence(5e6, 4500, seed=2)

    def test_stamp_equivalence_slow_rate(self):
        self._random_equivalence(1e3, 1500, seed=3)

    def test_touch_equals_slot_for_plus_stamp(self):
        """The fused hot path must be observationally the three-call chain."""
        rng = random.Random(9)
        fused = PacingTable(shard_id=0)
        chained = PacingTable(shard_id=0)
        for step in range(2000):
            flow = rng.randrange(40)
            now = step * 10_000
            size = rng.choice([64, 1500])
            expected = chained.stamp(
                chained.slot_for(flow, RATE_BPS), size, now
            )
            assert fused.touch(flow, RATE_BPS, size, now) == expected
            assert fused.last_slot == fused.lookup(flow)
            if rng.random() < 0.2:  # churn: exercise tombstones + rehash
                fused.remove(flow)
                chained.remove(flow)
        assert len(fused) == len(chained)

    def test_slot_for_initialises_fresh_state_only(self):
        pacing = PacingTable(shard_id=3)
        slot = pacing.slot_for(9, RATE_BPS)
        assert pacing.stamp(slot, 1500, 1000) == 1000
        # An existing entry keeps its stored rate across later calls.
        assert pacing.slot_for(9, 1.0) == slot
        assert pacing.next_free_at(slot) > 1000

    def test_detach_install_roundtrip(self):
        pacing = PacingTable(shard_id=2)
        slot = pacing.slot_for(7, 5e6)
        pacing.stamp(slot, 1500, 1_000_000)
        next_free = pacing.next_free_at(slot)
        shaper = pacing.detach(7)
        assert 7 not in pacing
        assert shaper.name == "shard2-flow-7"
        assert shaper.next_free_ns == next_free
        assert shaper.limit == RateLimit(5e6, 0)
        other = PacingTable(shard_id=4)
        other.install(7, shaper)
        assert other.next_free_ns(7) == next_free
        assert other.detach(7).credit_bytes == shaper.credit_bytes

    def test_detach_missing_flow_returns_none(self):
        assert PacingTable(shard_id=0).detach(123) is None

    def test_next_free_ns_raises_for_missing_flow(self):
        with pytest.raises(KeyError):
            PacingTable(shard_id=0).next_free_ns(1)

    def test_extreme_rate_saturates_instead_of_overflowing(self):
        pacing = PacingTable(shard_id=0)
        slot = pacing.slot_for(1, 1e-9)  # ~38k years per packet
        send_at = pacing.stamp(slot, 9000, 0)
        assert send_at == 0
        assert pacing.next_free_at(slot) == (1 << 63) - 1
        pacing.stamp(slot, 9000, 10)  # must not raise on the next store

    def test_pickle_roundtrip_keeps_column_bindings(self):
        pacing = PacingTable(shard_id=1)
        slot = pacing.slot_for(3, RATE_BPS)
        pacing.stamp(slot, 1500, 777)
        clone = pickle.loads(pickle.dumps(pacing))
        assert clone.next_free_ns(3) == pacing.next_free_ns(3)
        # The unpickled cached refs must alias the table's arrays, not copies.
        new_slot = clone.slot_for(8, RATE_BPS)
        assert clone.stamp(new_slot, 1500, 5) == 5
        assert clone.next_free_ns(8) > 5

    def test_as_dict_materialises_without_disturbing_state(self):
        pacing = PacingTable(shard_id=0)
        slot = pacing.slot_for(1, RATE_BPS)
        pacing.stamp(slot, 1500, 0)
        before = pacing.next_free_ns(1)
        view = pacing.as_dict()
        assert set(view) == {1}
        assert view[1].next_free_ns == before
        assert pacing.next_free_ns(1) == before


class TestShardingWindowBound:
    def test_window_tracking_is_bounded_with_evictions_counted(self):
        sharder = FlowSharder(4, window_limit=64)
        for flow in range(1000):
            sharder.record(flow, flow % 4)
        assert len(sharder.flow_loads()) <= 64
        assert sharder.stats.window_evictions == 1000 - 64
        # Per-shard totals keep every packet (loads and imbalance stay exact).
        assert sum(sharder.shard_loads()) == 1000
        assert sharder.stats.window_packets == 1000

    def test_eviction_prefers_cold_flows(self):
        sharder = FlowSharder(2, window_limit=16)
        sharder.record(999, 0, packets=10_000)  # the elephant
        for flow in range(500):
            sharder.record(flow, flow % 2)
        assert 999 in sharder.flow_loads()  # never the coldest probed entry

    def test_reset_window_releases_idle_slots(self):
        sharder = FlowSharder(2, window_limit=1024)
        for flow in range(100):
            sharder.record(flow, 0)
        sharder.pin(7, 1)
        sharder.reset_window()
        assert sharder.flow_loads() == {}
        assert sharder.shard_loads() == [0, 0]
        # Only the pinned flow still needs a slot.
        assert len(sharder.flows) == 1
        assert sharder.pinned_shard(7) == 1

    def test_window_limit_validation(self):
        with pytest.raises(ValueError):
            FlowSharder(2, window_limit=0)


class TestIncrementalGc:
    def _churn(self, runtime, generations=6, flows_per_gen=40):
        for generation in range(generations):
            base = generation * flows_per_gen
            packets = [
                Packet(flow_id=base + index, size_bytes=1500)
                for index in range(flows_per_gen)
                for _repeat in range(2)
            ]
            runtime.submit_at(generation * 10_000_000, packets)
        runtime.run()

    def test_bounded_sweep_converges_to_global_result(self):
        kwargs = dict(
            num_shards=2, default_rate_bps=RATE_BPS, quantum_ns=50_000,
            gc_interval_packets=16, record_transmits=False,
        )
        incremental = ShardedRuntime(gc_sweep_limit=4, **kwargs)
        global_scan = ShardedRuntime(**kwargs)
        self._churn(incremental)
        self._churn(global_scan)
        assert incremental.transmitted == global_scan.transmitted == 480
        # Bounded sweeps lag while packets flow, but the cursor wraps across
        # triggers: drive both to quiescence and the live sets must agree.
        for runtime in (incremental, global_scan):
            for _ in range(200):
                before = len(runtime.flows)
                runtime._gc_flow_state(runtime.simulator.now_ns + 10**12)
                if len(runtime.flows) == before == 0:
                    break
        live_inc = sorted(flow for flow, _slot in incremental.flows.items())
        live_glob = sorted(flow for flow, _slot in global_scan.flows.items())
        assert live_inc == live_glob == []
        assert incremental.flows.stats.gc_reclaimed == 240
        assert incremental.flows.stats.gc_sweeps > global_scan.flows.stats.gc_sweeps

    def test_sweep_limit_bounds_examinations_per_trigger(self):
        runtime = ShardedRuntime(
            1, default_rate_bps=RATE_BPS, quantum_ns=50_000,
            gc_interval_packets=None, gc_sweep_limit=5,
        )
        runtime.submit_batch(
            [Packet(flow_id=flow, size_bytes=64) for flow in range(50)]
        )
        runtime.run()
        examined_before = runtime.flows.stats.gc_examined
        runtime._gc_flow_state(runtime.simulator.now_ns + 10**12)
        assert runtime.flows.stats.gc_examined - examined_before == 5
        assert len(runtime.flows) == 45

    def test_gc_sweep_limit_validation(self):
        with pytest.raises(ValueError):
            ShardedRuntime(2, gc_sweep_limit=0)

    def test_telemetry_reports_flow_state_block(self):
        runtime = ShardedRuntime(2, default_rate_bps=RATE_BPS, quantum_ns=50_000)
        runtime.submit_batch(
            [Packet(flow_id=flow, size_bytes=1500) for flow in range(32)]
        )
        runtime.run()
        block = runtime.telemetry().flow_state
        assert block["live_flows"] == len(runtime.flows)
        assert block["slot_limit"] >= block["live_flows"]
        assert block["memory_bytes"] > 0
        assert block == runtime.telemetry().as_dict()["flow_state"]
