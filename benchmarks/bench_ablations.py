"""Ablation benchmarks for the design choices called out in DESIGN.md.

* cFFS word width: how the bitmap-tree fan-out changes the (modelled) number
  of word operations per packet.
* Approximate-queue alpha: capacity vs selection error trade-off.
* Carousel slot granularity: polling cost vs shaping precision (why Eiffel's
  exact timer wins).
* Bucketed vs comparison-based queues: the ~6x claim of Section 5.2.
"""

import random
import time

from conftest import report

from repro.analysis import Table, format_table
from repro.core.queues import (
    ApproximateGradientQueue,
    BinaryHeapQueue,
    BucketSpec,
    BucketedHeapQueue,
    CircularFFSQueue,
    HierarchicalFFSQueue,
    RBTreeQueue,
)
from repro.core.queues.gradient import (
    fit_bucket_spec,
    gradient_capacity,
    gradient_shift,
    gradient_start_index,
)
from repro.kernel import CarouselQdisc, EiffelQdisc
from repro.core.model import Packet


def test_ablation_cffs_word_width(benchmark):
    """Word width vs FFS operations per packet for a 100k-bucket cFFS."""
    results = []
    for word_width in (8, 16, 32, 64):
        queue = CircularFFSQueue(
            BucketSpec(num_buckets=100_000), word_width=word_width
        )
        rng = random.Random(1)
        for _ in range(5000):
            queue.enqueue(rng.randrange(100_000), None)
        for _ in range(5000):
            queue.extract_min()
        scans_per_packet = queue.stats.word_scans / 10_000
        results.append((word_width, round(scans_per_packet, 2)))
    table = Table(
        title="cFFS word width vs FFS word operations per packet (100k buckets)",
        columns=["word width", "word ops / packet"],
    )
    for row in results:
        table.add_row(*row)
    report("Ablation — cFFS word width", format_table(table))
    benchmark.extra_info["word_ops"] = dict(results)
    benchmark(lambda: CircularFFSQueue(BucketSpec(num_buckets=100_000), word_width=64))
    # Wider words mean fewer levels and fewer word operations.
    assert results[-1][1] < results[0][1]


def test_ablation_approx_alpha(benchmark):
    """Alpha sweep: capacity grows with alpha, error grows too."""
    rows = []
    for alpha in (4, 8, 16, 32):
        capacity = gradient_capacity(alpha)
        spec = fit_bucket_spec(5000, alpha=alpha)
        queue = ApproximateGradientQueue(spec, alpha=alpha, track_errors=True)
        rng = random.Random(2)
        occupied = rng.sample(range(spec.num_buckets), int(spec.num_buckets * 0.8))
        for bucket in occupied:
            queue.enqueue(bucket * spec.granularity, None)
        while not queue.empty:
            queue.extract_min()
        rows.append(
            (
                alpha,
                gradient_start_index(alpha),
                gradient_shift(alpha),
                capacity,
                round(queue.average_selection_error, 2),
            )
        )
    table = Table(
        title="Approximate gradient queue: alpha sweep (80% occupancy)",
        columns=["alpha", "I0", "u(alpha)", "capacity (buckets)", "avg error"],
    )
    for row in rows:
        table.add_row(*row)
    report("Ablation — approximate queue alpha", format_table(table))
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(lambda: gradient_capacity(16), rounds=10, iterations=10)
    capacities = [row[3] for row in rows]
    assert capacities == sorted(capacities)


def test_ablation_carousel_slot_granularity(benchmark):
    """Timer fires per second of Carousel vs Eiffel as slot size shrinks."""
    rows = []
    for slot_ns in (100_000, 10_000, 1_000):
        carousel = CarouselQdisc(default_rate_bps=1e9, slot_ns=slot_ns)
        eiffel = EiffelQdisc(default_rate_bps=1e9)
        for qdisc in (carousel, eiffel):
            for _ in range(50):
                qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        # Simulate one millisecond of polling / exact wake-ups.
        carousel_fires = 0
        now = 0
        while now < 1_000_000:
            deadline = carousel.soonest_deadline_ns(now)
            if deadline is None:
                break
            now = deadline
            carousel.dequeue_due(now)
            carousel_fires += 1
        eiffel_fires = 0
        now = 0
        while now < 1_000_000:
            deadline = eiffel.soonest_deadline_ns(now)
            if deadline is None:
                break
            now = max(deadline, now + 1)
            eiffel.dequeue_due(now)
            eiffel_fires += 1
        rows.append((slot_ns, carousel_fires, eiffel_fires))
    table = Table(
        title="Timer fires in 1 ms of a paced 1 Gbps flow (50 packets queued)",
        columns=["carousel slot (ns)", "carousel fires", "eiffel fires"],
    )
    for row in rows:
        table.add_row(*row)
    report("Ablation — Carousel polling granularity", format_table(table))
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(
        lambda: CarouselQdisc(default_rate_bps=1e9, slot_ns=10_000),
        rounds=5,
        iterations=5,
    )
    # Finer slots blow up Carousel's polling while Eiffel's exact wake-ups
    # stay tied to packet deadlines: at the finest slot Carousel fires many
    # times more often than Eiffel.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][1] > 3 * rows[-1][2]


def test_ablation_bucketed_vs_comparison(benchmark):
    """Section 5.2: bucketed queues ~6x faster than comparison-based queues."""
    from conftest import modelled_cycles_per_op

    levels = 50_000
    operations = 20_000

    def churn(queue) -> tuple[float, float]:
        rng = random.Random(9)
        for _ in range(5000):
            queue.enqueue(rng.randrange(levels), None)
        queue.stats.reset()
        start = time.perf_counter()
        for _ in range(operations):
            queue.enqueue(rng.randrange(levels), None)
            queue.extract_min()
        wall = operations / (time.perf_counter() - start) / 1e6
        cycles = modelled_cycles_per_op(queue, 2 * operations)
        return wall, cycles

    results = {
        "HierarchicalFFS": churn(HierarchicalFFSQueue(BucketSpec(num_buckets=levels))),
        "BucketedHeap": churn(BucketedHeapQueue(BucketSpec(num_buckets=levels))),
        "BinaryHeap": churn(BinaryHeapQueue()),
        "RBTree": churn(RBTreeQueue()),
    }
    table = Table(
        title="Bucketed vs comparison-based queues (50k priority levels)",
        columns=["queue", "wall-clock Mpps", "modelled cycles/op"],
    )
    for name, (wall, cycles) in results.items():
        table.add_row(name, round(wall, 3), round(cycles, 1))
    report("Ablation — bucketed vs comparison-based", format_table(table))
    benchmark.extra_info["cycles_per_op"] = {
        k: round(v[1], 1) for k, v in results.items()
    }
    benchmark(
        lambda: churn(HierarchicalFFSQueue(BucketSpec(num_buckets=levels)))
    )
    # In modelled cycles (cache-aware costs) the bucketed FFS queue is
    # several times cheaper than the RB-tree — the paper's ~6x observation.
    ffs_cycles = results["HierarchicalFFS"][1]
    rb_cycles = results["RBTree"][1]
    assert rb_cycles > 3 * ffs_cycles
