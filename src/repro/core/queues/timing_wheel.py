"""Timing Wheel — the data structure underlying Carousel (the shaping baseline).

Carousel [SIGCOMM'17] stores every packet in a timing wheel indexed by its
transmission timestamp: a circular array of time slots, each holding a FIFO
of packets, advanced by a clock.  The wheel supports O(1) insertion and O(1)
"release everything whose slot has passed", but — as the Eiffel paper points
out (Section 2) — it does *not* support ``ExtractMin``: the earliest enqueued
packet cannot be found without scanning slots, so the wheel only fits
non-work-conserving, time-indexed schedules, and its driver must poll (fire a
timer) every slot interval whether or not packets are due.

``HierarchicalTimingWheel`` extends the horizon with coarser outer wheels
(the classic hashed/hierarchical design of Varghese & Lauck) and is used by
the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Optional


class TimingWheel:
    """A single-level timing wheel over ``num_slots`` slots of ``granularity`` ticks.

    Timestamps are absolute integers (e.g. nanoseconds).  The wheel maintains
    ``current_time``; packets with timestamps in the past are placed in the
    current slot (sent as soon as possible) and packets beyond the horizon are
    placed in the last future slot, mirroring Carousel's behaviour.
    """

    __slots__ = (
        "num_slots",
        "granularity",
        "current_time",
        "_slots",
        "_size",
        "_pending_scratch",
        "insertions",
        "slot_advances",
        "overflow_insertions",
        "stale_insertions",
    )

    def __init__(
        self, num_slots: int, granularity: int = 1, start_time: int = 0
    ) -> None:
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.num_slots = num_slots
        self.granularity = granularity
        self.current_time = start_time
        self._slots: list[Deque[tuple[int, Any]]] = [deque() for _ in range(num_slots)]
        self._size = 0
        # Reused by advance_to for the not-yet-due holdback of a scanned
        # slot, so the per-slot visit allocates nothing.
        self._pending_scratch: Deque[tuple[int, Any]] = deque()
        # Operation counters for the CPU cost model.
        self.insertions = 0
        self.slot_advances = 0
        self.overflow_insertions = 0
        self.stale_insertions = 0

    # -- helpers ---------------------------------------------------------------

    @property
    def horizon(self) -> int:
        """Ticks covered by the wheel from ``current_time``."""
        return self.num_slots * self.granularity

    def __len__(self) -> int:
        return self._size

    @property
    def empty(self) -> bool:
        """True when no packets are stored."""
        return self._size == 0

    def _effective_timestamp(self, timestamp: int) -> int:
        """Clamp ``timestamp`` into the wheel's current horizon.

        Past timestamps collapse to "now" (send as soon as possible) and
        timestamps beyond the horizon collapse to the last future slot, which
        is exactly Carousel's behaviour for out-of-range transmission times.
        """
        if timestamp <= self.current_time:
            self.stale_insertions += 1
            return self.current_time
        if timestamp >= self.current_time + self.horizon:
            self.overflow_insertions += 1
            return self.current_time + self.horizon - self.granularity
        return timestamp

    def _slot_index(self, timestamp: int) -> int:
        return (timestamp // self.granularity) % self.num_slots

    # -- operations --------------------------------------------------------------

    def insert(self, timestamp: int, item: Any) -> None:
        """Insert ``item`` to be released at ``timestamp``."""
        self.insertions += 1
        effective = self._effective_timestamp(timestamp)
        slot = self._slot_index(effective)
        self._slots[slot].append((effective, item))
        self._size += 1

    def insert_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Insert every ``(timestamp, item)`` pair; returns the count inserted."""
        count = 0
        for timestamp, item in pairs:
            self.insert(timestamp, item)
            count += 1
        return count

    def advance_to(self, now: int) -> list[tuple[int, Any]]:
        """Advance the wheel clock to ``now`` and release every due packet.

        Every slot between the previous clock value and ``now`` is visited
        (that per-slot visit is exactly the polling overhead Carousel pays,
        and what Figure 10's softirq panel shows); packets in visited slots
        are returned in slot order.  Entries within one slot are *not*
        ordered by timestamp — packets may be inserted out of order within a
        slot interval — so the whole slot is scanned and not-yet-due entries
        are retained (in arrival order) for a later advance.
        """
        released: list[tuple[int, Any]] = []
        if now < self.current_time:
            return released
        num_slots = self.num_slots
        slots = self._slots
        current_slot = (self.current_time // self.granularity) % num_slots
        slots_to_advance = (now // self.granularity) - (
            self.current_time // self.granularity
        )
        slots_to_advance = min(slots_to_advance, num_slots)
        pending = self._pending_scratch
        drained = 0
        for step in range(slots_to_advance + 1):
            slot = (current_slot + step) % num_slots
            self.slot_advances += 1
            entries = slots[slot]
            if not entries:
                continue
            held = 0
            while entries:
                entry = entries.popleft()
                if entry[0] > now:
                    pending.append(entry)
                    held += 1
                    continue
                drained += 1
                released.append(entry)
            if held:
                entries.extend(pending)
                pending.clear()
        self._size -= drained
        self.current_time = now
        return released

    def peek_slots(self) -> Iterable[int]:
        """Yield the indices of non-empty slots (for inspection/tests)."""
        for index, slot in enumerate(self._slots):
            if slot:
                yield index

    def next_due_time(self) -> Optional[int]:
        """Timestamp of the earliest stored packet, found by scanning slots.

        This is an O(num_slots) operation — the whole point of the paper's
        comparison: a timing wheel cannot answer ExtractMin/SoonestDeadline
        cheaply, so Carousel's driver polls instead.
        """
        best: Optional[int] = None
        for slot in self._slots:
            for timestamp, _item in slot:
                if best is None or timestamp < best:
                    best = timestamp
        return best


class HierarchicalTimingWheel:
    """Multi-level timing wheel with geometrically coarser outer levels.

    Packets whose timestamps exceed the innermost horizon are parked in an
    outer wheel and cascaded inward as the clock advances.  Used by ablation
    benchmarks to show that extending Carousel's horizon does not remove the
    per-slot polling cost.
    """

    __slots__ = ("levels", "current_time", "_size")

    def __init__(
        self,
        slots_per_level: int,
        granularity: int = 1,
        levels: int = 2,
        start_time: int = 0,
    ) -> None:
        if levels <= 0:
            raise ValueError("levels must be positive")
        self.levels = [
            TimingWheel(
                slots_per_level,
                granularity * (slots_per_level**level),
                start_time=start_time,
            )
            for level in range(levels)
        ]
        self.current_time = start_time
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def empty(self) -> bool:
        """True when no packets are stored at any level."""
        return self._size == 0

    @property
    def horizon(self) -> int:
        """Total ticks covered across all levels."""
        return self.levels[-1].horizon

    def insert(self, timestamp: int, item: Any) -> None:
        """Insert into the finest level whose horizon covers ``timestamp``."""
        for wheel in self.levels:
            if timestamp < self.current_time + wheel.horizon:
                wheel.insert(timestamp, item)
                break
        else:
            self.levels[-1].insert(timestamp, item)
        self._size += 1

    def insert_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Insert every ``(timestamp, item)`` pair; returns the count inserted."""
        count = 0
        for timestamp, item in pairs:
            self.insert(timestamp, item)
            count += 1
        return count

    def advance_to(self, now: int) -> list[tuple[int, Any]]:
        """Advance all levels to ``now``; cascade and return due packets."""
        due: list[tuple[int, Any]] = []
        released_inner = self.levels[0].advance_to(now)
        due.extend(released_inner)
        for wheel in self.levels[1:]:
            for timestamp, item in wheel.advance_to(now):
                if timestamp <= now:
                    due.append((timestamp, item))
                else:  # pragma: no cover - defensive; outer slots are coarse
                    self.levels[0].insert(timestamp, item)
                    self._size += 1
        self.current_time = now
        self._size -= len(due)
        return due


__all__ = ["HierarchicalTimingWheel", "TimingWheel"]
