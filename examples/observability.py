#!/usr/bin/env python3
"""Observability walkthrough: histograms, a Perfetto trace, and a scrape.

One skewed workload (Zipf arrivals, four shards, work stealing, two RX
cores), observed three ways — all deterministic, because every instrument
reads the virtual clock:

1. per-seam latency histograms: where a packet's time actually went, as
   p50/p99/p999 per seam (RX ring → mailbox → shard queue → transmit);
2. the flight recorder: the same run as a Chrome trace-event file — open
   ``observability_trace.json`` at https://ui.perfetto.dev to scrub through
   ingress pulls, mailbox handoffs, drain batches, and steal leases on one
   timeline;
3. the metrics timeline: periodic gauge samples, printed the way a
   Prometheus scrape of the live system would see them;
4. the same plane declared as data: an ``[observability]`` TOML block with
   a ``p99_latency_ns`` bound evaluated like any other assertion.

Run:  python examples/observability.py
"""

import json
import random
from pathlib import Path

from repro.core.model import Packet
from repro.runtime import FlightRecorder, LogHistogram, MetricsTimeline, ShardedRuntime
from repro.scenario import dump_toml, load_toml, run_scenario

TRACE_PATH = Path(__file__).resolve().parent / "observability_trace.json"

NUM_FLOWS = 32
NUM_PACKETS = 2_000


def _zipf_workload(runtime: ShardedRuntime) -> None:
    """Seeded Zipf arrivals in RX-sized bursts: hot flows, queueing, steals."""
    rng = random.Random(2019)
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(NUM_FLOWS)]
    flow_ids = rng.choices(range(NUM_FLOWS), weights=weights, k=NUM_PACKETS)
    for index in range(0, NUM_PACKETS, 256):
        chunk = flow_ids[index : index + 256]
        runtime.submit_at(
            (index // 256) * 200_000,
            [Packet(flow_id=flow_id, size_bytes=1500) for flow_id in chunk],
        )


def instrumented_run_demo() -> ShardedRuntime:
    print("=== Act 1: per-seam latency histograms ===")
    runtime = ShardedRuntime(
        4,
        default_rate_bps=1e9,
        steal_enabled=True,
        steal_min_backlog=4,
        ingress_cores=2,
        latency_histograms=True,
        tracer=FlightRecorder(),
        metrics_timeline=MetricsTimeline(interval_ns=100_000),
    )
    _zipf_workload(runtime)
    runtime.run()
    latency = runtime.telemetry().latency
    print(f"  {'seam':<16}{'count':<8}{'p50':>10}{'p99':>12}{'p999':>12}")
    for seam in ("rx_sojourn", "mailbox_wait", "queue_sojourn", "e2e"):
        row = latency[seam].as_dict()
        print(f"  {seam:<16}{row['count']:<8}{row['p50_ns']:>10}"
              f"{row['p99_ns']:>12}{row['p999_ns']:>12}")
    p99 = latency["e2e"].quantile(0.99)
    bound = p99 + (p99 >> latency["e2e"].precision)
    print(f"  e2e p99 is exact to one bucket: true p99 in [{p99 * 128 // 129}, {p99}]"
          f" (<= {bound - p99} ns wide at precision=7)")
    return runtime


def flight_recorder_demo(runtime: ShardedRuntime) -> None:
    print("\n=== Act 2: the same run as a Perfetto trace ===")
    tracer = runtime.tracer
    for track, count in sorted(tracer.counts_by_track().items()):
        print(f"  {track:<12} {count} events")
    print(f"  ({tracer.recorded} recorded, {tracer.dropped} dropped by the ring)")
    TRACE_PATH.write_text(json.dumps(tracer.to_chrome_trace(), indent=2) + "\n")
    print(f"  wrote {TRACE_PATH.name} — open it at https://ui.perfetto.dev")


def timeline_demo(runtime: ShardedRuntime) -> None:
    print("\n=== Act 3: the metrics timeline, scraped ===")
    timeline = runtime.timeline
    print(f"  {len(timeline)} samples at {timeline.interval_ns} ns intervals; "
          "the final scrape:")
    for line in timeline.to_prometheus().splitlines():
        if not line.startswith("#"):
            print(f"    {line}")


def scenario_demo() -> None:
    print("\n=== Act 4: the plane as data, with a p99 bound ===")
    toml_text = """
        name = "observed"
        seed = 7

        [topology]
        kind = "runtime"

        [policy]
        default_rate_bps = 1e9

        [traffic]
        pattern = "zipf"
        num_flows = 16
        total_packets = 400

        [runtime]
        shards = 4
        stealing = true

        [observability]
        latency_histograms = true
        tracer = true
        timeline = true

        [assertions]
        p99_latency_ns = 1_000_000_000
    """
    spec = load_toml(toml_text)
    result = run_scenario(spec)
    e2e = result.telemetry.latency["e2e"]
    print(f"  spec round-trips: {load_toml(dump_toml(spec)) == spec}")
    print(f"  e2e p99 = {e2e.quantile(0.99)} ns "
          f"<= bound {spec.assertions.p99_latency_ns} ns: ok={result.ok}")
    print("  same seed, same histogram: "
          f"{run_scenario(spec).telemetry.latency['e2e'] == e2e}")


def merge_demo() -> None:
    print("\n=== Coda: histograms compose like counters ===")
    shards = [LogHistogram() for _ in range(3)]
    rng = random.Random(1)
    for shard_hist in shards:
        for _ in range(1000):
            shard_hist.record(rng.randrange(10_000_000))
    merged = LogHistogram.aggregate(shards)
    print(f"  3 shards x 1000 samples -> merged count {merged.count}, "
          f"p99 {merged.quantile(0.99)} ns (order-independent, picklable)")


if __name__ == "__main__":
    runtime = instrumented_run_demo()
    flight_recorder_demo(runtime)
    timeline_demo(runtime)
    scenario_demo()
    merge_demo()
