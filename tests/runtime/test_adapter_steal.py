"""Work-stealing knobs on the substrate adapters.

The sharded runtime's work stealing (PR 3) lives behind
``ShardedRuntime(steal_enabled=True)``; these tests cover the ROADMAP
follow-on that exposes the knob to the other two substrates:

* ``MultiQueueQdisc(steal_enabled=True)`` — the kernel layer: an idle child
  qdisc takes over the deepest sibling's imminent due window through the
  donor/acceptor surface on ``EiffelQdisc``, moving the extraction cycles to
  the idle core (the bottleneck-core view must drop, packets must be
  conserved, and per-flow release order must follow the stamps).
* ``ShardedPortQueue(steal_enabled=True)`` — the netsim layer: empty rings
  donate their pull quota to loaded rings within one arbitration pass; the
  batch content is identical, the arbitration work is not.
"""

import pytest

from repro.core.model.packet import Packet
from repro.kernel.eiffel_qdisc import EiffelQdisc
from repro.netsim.elements import DropTailEcnQueue
from repro.runtime import FlowSharder, MultiQueueQdisc, ShardedPortQueue

NUM_FLOWS = 4
PACKETS_PER_FLOW = 8
RATE_BPS = 1e9  # 1500 B at 1 Gbps = 12 us between stamps of one flow


def _pinned_sharder(num_shards: int, shard: int) -> FlowSharder:
    sharder = FlowSharder(num_shards)
    for flow_id in range(NUM_FLOWS):
        sharder.pin(flow_id, shard)
    return sharder


def _skewed_mq(steal: bool) -> MultiQueueQdisc:
    """Two Eiffel children with every flow hashed to child 0."""
    return MultiQueueQdisc(
        2,
        lambda shard: EiffelQdisc(default_rate_bps=RATE_BPS),
        sharder=_pinned_sharder(2, 0),
        steal_enabled=steal,
        steal_batch=16,
        steal_min_backlog=4,
    )


def _drive_to_drain(mq: MultiQueueQdisc) -> list:
    """Timer-driven release loop: fire at each soonest deadline until empty."""
    released = []
    now = 0
    for _ in range(10_000):
        released.extend(mq.dequeue_due(now))
        if mq.backlog == 0:
            break
        deadline = mq.soonest_deadline_ns(now)
        assert deadline is not None
        now = max(deadline, now + 1)
    assert mq.backlog == 0, "drive loop failed to drain the mq root"
    return released


def _offered_packets():
    return [
        Packet(flow_id=flow_id, size_bytes=1500)
        for _ in range(PACKETS_PER_FLOW)
        for flow_id in range(NUM_FLOWS)
    ]


class TestMultiQueueQdiscStealing:
    def test_steals_move_window_and_conserve_packets(self):
        mq = _skewed_mq(steal=True)
        packets = _offered_packets()
        for packet in packets:
            mq.enqueue_packet(packet, now_ns=0)
        assert mq.children[0].backlog == len(packets)
        released = _drive_to_drain(mq)

        assert mq.steals > 0, "no lease was granted despite an idle child"
        assert mq.packets_stolen > 0
        # Conservation: every offered packet released exactly once.
        assert sorted(p.packet_id for p in released) == sorted(
            p.packet_id for p in packets
        )
        # The stolen window really ran on the thief's core.
        assert mq.children[1].total_cycles() > 0

    def test_per_flow_release_order_follows_stamps(self):
        mq = _skewed_mq(steal=True)
        for packet in _offered_packets():
            mq.enqueue_packet(packet, now_ns=0)
        released = _drive_to_drain(mq)
        assert mq.steals > 0
        per_flow_stamps = {}
        for packet in released:
            per_flow_stamps.setdefault(packet.flow_id, []).append(
                packet.metadata["send_at_ns"]
            )
        for flow_id, stamps in per_flow_stamps.items():
            assert stamps == sorted(stamps), f"flow {flow_id} released out of order"

    def test_stealing_lowers_bottleneck_core(self):
        results = {}
        for steal in (False, True):
            mq = _skewed_mq(steal=steal)
            for packet in _offered_packets():
                mq.enqueue_packet(packet, now_ns=0)
            _drive_to_drain(mq)
            results[steal] = mq.max_child_cycles()
        assert results[True] < results[False], (
            f"stealing did not lower the bottleneck core: "
            f"{results[False]:.0f} -> {results[True]:.0f} cycles"
        )

    def test_coalesced_fire_keeps_per_flow_stamp_order(self):
        """A catch-up fire spanning stamps on both children must stay sorted.

        After a steal, one flow's due packets can sit on the thief (earlier
        stamps) and the victim (later stamps) simultaneously.  A timer that
        fires late — coalescing many deadlines into one ``dequeue_due`` —
        drains both children in one call; the root must merge by stamp, not
        return raw round-robin child order.
        """
        mq = _skewed_mq(steal=True)
        for packet in _offered_packets():
            mq.enqueue_packet(packet, now_ns=0)
        released = mq.dequeue_due(0)          # due head + the steal happens here
        released += mq.dequeue_due(12_000)    # one exact fire (moves the RR cursor)
        released += mq.dequeue_due(10_000_000)  # coalesced catch-up over everything
        assert mq.steals > 0
        assert mq.backlog == 0
        per_flow = {}
        for packet in released:
            per_flow.setdefault(packet.flow_id, []).append(
                packet.metadata["send_at_ns"]
            )
        for flow_id, stamps in per_flow.items():
            assert stamps == sorted(stamps), (
                f"flow {flow_id} reordered under a coalesced fire: {stamps}"
            )

    def test_knob_off_never_touches_idle_child(self):
        mq = _skewed_mq(steal=False)
        for packet in _offered_packets():
            mq.enqueue_packet(packet, now_ns=0)
        _drive_to_drain(mq)
        assert mq.steals == 0
        assert mq.children[1].total_cycles() == 0

    def test_no_steal_between_balanced_children(self):
        # Every child loaded: nobody is idle, so the pass must do nothing.
        mq = MultiQueueQdisc(
            2,
            lambda shard: EiffelQdisc(default_rate_bps=RATE_BPS),
            steal_enabled=True,
            steal_min_backlog=4,
        )
        for flow_id in range(16):
            for _ in range(4):
                mq.enqueue_packet(Packet(flow_id=flow_id, size_bytes=1500), now_ns=0)
        assert all(child.backlog for child in mq.children)
        _drive_to_drain(mq)
        assert mq.steals == 0


class _CountingRing(DropTailEcnQueue):
    """DropTail ring that counts how many NIC pulls it services."""

    def __init__(self, capacity_packets: int = 64) -> None:
        super().__init__(capacity_packets=capacity_packets)
        self.pulls = 0

    def dequeue_batch(self, n):
        self.pulls += 1
        return super().dequeue_batch(n)


def _skewed_port(steal: bool) -> ShardedPortQueue:
    return ShardedPortQueue(
        2,
        lambda shard: _CountingRing(),
        sharder=_pinned_sharder(2, 0),
        steal_enabled=steal,
    )


class TestShardedPortQueueQuotaStealing:
    def test_identical_batch_with_fewer_arbitration_passes(self):
        pulls = {}
        batches = {}
        for steal in (False, True):
            port = _skewed_port(steal)
            port.enqueue_batch([Packet(flow_id=0) for _ in range(30)])
            batch = port.dequeue_batch(16)
            batches[steal] = [packet.packet_id for packet in batch]
            pulls[steal] = sum(ring.pulls for ring in port.shards)
        # Work conservation is untouched: the pull takes the same count
        # (here from one deep ring, so FIFO fixes the order too; with
        # several loaded rings only per-ring FIFO is contractual — the
        # inter-ring interleaving is the arbiter's latitude).
        assert len(batches[True]) == 16
        assert len(batches[False]) == len(batches[True])
        # The empty ring's quota was donated: fewer shrinking passes.
        assert pulls[True] < pulls[False], (
            f"quota stealing did not reduce arbitration passes: "
            f"{pulls[False]} -> {pulls[True]}"
        )
        assert port.quota_steals > 0

    def test_fifo_preserved_with_steal_enabled(self):
        port = _skewed_port(steal=True)
        packets = [Packet(flow_id=0, metadata={"seq": index}) for index in range(20)]
        port.enqueue_batch(packets)
        drained = port.dequeue_batch(20)
        assert [packet.metadata["seq"] for packet in drained] == list(range(20))

    def test_balanced_rings_never_count_a_steal(self):
        port = ShardedPortQueue(
            2, lambda shard: _CountingRing(), steal_enabled=True
        )
        # Load both rings.
        for flow_id in range(8):
            port.enqueue_batch([Packet(flow_id=flow_id) for _ in range(4)])
        assert all(len(ring) for ring in port.shards)
        # A bounded pull that no ring can exhaust: every pass sees both
        # rings loaded, so no quota is ever donated.  (A full drain *should*
        # count donations once rings start emptying mid-drain.)
        pulled = port.dequeue_batch(8)
        assert len(pulled) == 8
        assert port.quota_steals == 0

    def test_empty_port_short_circuits(self):
        port = _skewed_port(steal=True)
        assert port.dequeue_batch(8) == []
        assert port.quota_steals == 0


@pytest.mark.parametrize("steal", [False, True])
def test_mq_cost_mirroring_still_exact(steal):
    """The root's mirrored accounts must equal the children's own, steal or not."""
    mq = _skewed_mq(steal=steal)
    for packet in _offered_packets():
        mq.enqueue_packet(packet, now_ns=0)
    _drive_to_drain(mq)
    assert mq.total_cycles() == pytest.approx(
        sum(child.total_cycles() for child in mq.children)
    )


class TestShardedPortQueuePriorityArbiter:
    """arbiter="priority": strict priority holds across rings, not just
    within them (the multi-queue pFabric port of the Figure 19 variant)."""

    def _pfabric_port(self, num_shards=2):
        from repro.netsim.elements import PFabricPortQueue

        return ShardedPortQueue(
            num_shards,
            lambda shard: PFabricPortQueue(),
            arbiter="priority",
        )

    @staticmethod
    def _packet(flow_id, remaining):
        packet = Packet(flow_id=flow_id, size_bytes=1500)
        packet.metadata["remaining_bytes"] = remaining
        return packet

    def test_dequeue_serves_best_head_across_rings(self):
        port = self._pfabric_port()
        sharder = port.sharder
        # Find one flow per ring, then put the high-priority (small
        # remaining) packet on one ring and bulk on the other.
        flow_a = next(f for f in range(64) if sharder.shard_for(f) == 0)
        flow_b = next(f for f in range(64) if sharder.shard_for(f) == 1)
        port.enqueue(self._packet(flow_a, remaining=9_000_000))
        port.enqueue(self._packet(flow_a, remaining=9_000_000 - 1500))
        port.enqueue(self._packet(flow_b, remaining=3_000))
        # RR starting at ring 0 would emit flow_a first; priority
        # arbitration must serve the near-finished mouse immediately.
        released = port.dequeue()
        assert released.flow_id == flow_b
        # Then the elephant's packets, re-arbitrated per packet.
        assert [port.dequeue().flow_id for _ in range(2)] == [flow_a, flow_a]
        assert port.dequeue() is None

    def test_dequeue_batch_rearbitrates_per_packet(self):
        port = self._pfabric_port()
        sharder = port.sharder
        flow_a = next(f for f in range(64) if sharder.shard_for(f) == 0)
        flow_b = next(f for f in range(64) if sharder.shard_for(f) == 1)
        # Interleaved priorities across the two rings: the pull must come
        # out in global priority order, not ring-quota runs.
        port.enqueue_batch(
            [
                self._packet(flow_a, remaining=6_000),
                self._packet(flow_a, remaining=4_500),
                self._packet(flow_b, remaining=3_000),
                self._packet(flow_b, remaining=1_500),
            ]
        )
        batch = port.dequeue_batch(4)
        priorities = [p.metadata["remaining_bytes"] for p in batch]
        assert priorities == sorted(priorities)
        assert port.dequeue_batch(4) == []

    def test_head_priority_skips_lazily_evicted_corpses(self):
        # A pFabric eviction leaves a corpse in the priority index; its
        # stale (better) priority must not leak into the arbitration hint,
        # or the arbiter would pick this ring and emit a *worse* packet
        # than a sibling's genuine head — the exact inversion the priority
        # arbiter exists to prevent.
        from repro.netsim.elements import PFabricPortQueue

        queue = PFabricPortQueue(capacity_packets=2)
        low = self._packet(1, remaining=1_500)  # priority 1
        bulk = self._packet(2, remaining=15_000)  # priority 10
        queue.enqueue(low)
        queue.enqueue(bulk)
        # Arrival at priority 2 evicts the priority-10 packet (corpse stays
        # in the index under priority 10).
        assert queue.enqueue(self._packet(3, remaining=3_000))
        assert queue.dequeue() is low
        assert queue.dequeue().flow_id == 3
        assert len(queue) == 0
        assert queue.head_priority() is None
        # A genuinely worse packet arrives: the hint must report *its*
        # priority, not the corpse's stale 10.
        queue.enqueue(self._packet(4, remaining=75_000))
        assert queue.head_priority() == 50

    def test_priority_arbiter_requires_head_priority(self):
        with pytest.raises(ValueError):
            ShardedPortQueue(
                2, lambda shard: DropTailEcnQueue(), arbiter="priority"
            )
        with pytest.raises(ValueError):
            ShardedPortQueue(2, lambda shard: DropTailEcnQueue(), arbiter="weird")
