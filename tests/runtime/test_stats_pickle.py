"""Pickle round-trips for the slotted counter dataclasses.

Every ``CounterStatsMixin`` dataclass opts into ``slots=True`` for hot-path
attribute speed, which forfeits the ``__dict__``-based default pickle path.
The mixin pins an explicit wire format instead (``__getstate__`` returns the
field dict, ``__setstate__`` reassigns it) because the parallel execution
backends ship these snapshots across process boundaries in every
:class:`~repro.runtime.backend.ShardResult`.  These tests round-trip each
class with non-default values so any future field addition or slots change
that silently breaks the wire format fails loudly.
"""

import pickle

import pytest

from repro.core.queues import QueueStats
from repro.runtime import (
    FlowStateStats,
    IngressStats,
    MailboxStats,
    ShardWorkerStats,
    ShardingStats,
    StealStats,
)
from repro.runtime.stealing import StealChannelStats

ALL_STATS_CLASSES = [
    QueueStats,
    MailboxStats,
    ShardWorkerStats,
    ShardingStats,
    StealStats,
    IngressStats,
    StealChannelStats,
    FlowStateStats,
]


def _populated(cls):
    """An instance with a distinct non-default value in every field."""
    instance = cls()
    for index, (name, spec) in enumerate(instance.__dataclass_fields__.items()):
        value = 7 + index if isinstance(spec.default, int) else 0.5 + index
        setattr(instance, name, value)
    return instance


@pytest.mark.parametrize("cls", ALL_STATS_CLASSES, ids=lambda cls: cls.__name__)
class TestCounterStatsPickle:
    def test_round_trip_preserves_every_field(self, cls):
        original = _populated(cls)
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is cls
        assert clone.as_dict() == original.as_dict()
        assert clone.as_dict() != cls().as_dict()  # the values were non-default

    def test_round_trip_of_defaults(self, cls):
        clone = pickle.loads(pickle.dumps(cls()))
        assert clone.as_dict() == cls().as_dict()

    def test_clone_is_independent(self, cls):
        original = _populated(cls)
        clone = pickle.loads(pickle.dumps(original))
        first_field = next(iter(original.__dataclass_fields__))
        setattr(clone, first_field, getattr(clone, first_field) + 1)
        assert clone.as_dict() != original.as_dict()

    def test_instances_stay_dictless(self, cls):
        # The explicit pickle support must not have reintroduced __dict__:
        # one stats object per queue/shard sits on the hot path.
        original = _populated(cls)
        clone = pickle.loads(pickle.dumps(original))
        for instance in (original, clone):
            with pytest.raises(AttributeError):
                instance.__dict__

    def test_getstate_is_the_field_dict(self, cls):
        original = _populated(cls)
        assert original.__getstate__() == original.as_dict()
